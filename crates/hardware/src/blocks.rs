//! Gate-level primitive costs in NAND2 gate equivalents (GE).
//!
//! Coefficients follow standard-cell rules of thumb (full adder ≈ 4.5 GE,
//! D-flip-flop ≈ 4.5 GE, 2:1 mux ≈ 2.5 GE, XNOR ≈ 2 GE) used in textbook
//! gate-count estimation. Absolute accuracy is provided by the technology
//! calibration in [`crate::TechnologyModel`]; these numbers fix the
//! *ratios* between datapath structures.

/// GE cost of one full adder.
const FA: f64 = 4.5;
/// GE cost of one D-flip-flop (register bit).
const DFF: f64 = 4.5;
/// GE cost of one 2:1 mux bit.
const MUX2: f64 = 2.5;
/// GE cost of one XNOR (comparator bit).
const XNOR: f64 = 2.0;

/// A counted hardware primitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Primitive {
    /// `bits`-wide magnitude comparator (XNOR bits + AND tree + borrow).
    Comparator {
        /// Operand width.
        bits: u32,
    },
    /// Ripple/parallel adder of the given width.
    Adder {
        /// Operand width.
        bits: u32,
    },
    /// Array multiplier `a × b`.
    Multiplier {
        /// First operand width.
        a_bits: u32,
        /// Second operand width.
        b_bits: u32,
    },
    /// Barrel shifter: `bits` wide, `stages = ceil(log2(max_shift+1))`.
    BarrelShifter {
        /// Data width.
        bits: u32,
        /// Number of mux stages.
        stages: u32,
    },
    /// Register storage.
    Register {
        /// Total stored bits.
        bits: u32,
    },
    /// Priority encoder over `inputs` request lines.
    PriorityEncoder {
        /// Number of inputs.
        inputs: u32,
    },
    /// Read multiplexer: selects one of `entries` words of `bits` each.
    ReadMux {
        /// Number of selectable words.
        entries: u32,
        /// Word width.
        bits: u32,
    },
    /// IEEE-754 single-precision multiplier (24×24 mantissa array, exponent
    /// adder, rounding).
    Fp32Multiplier,
    /// IEEE-754 single-precision adder (alignment shifter, mantissa adder,
    /// leading-zero count + normalization shifter, rounding).
    Fp32Adder,
    /// FP32 magnitude comparator (sign/exponent/mantissa compare).
    Fp32Comparator,
}

/// Area/energy accounting for a primitive.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GateCost {
    /// NAND2 gate equivalents.
    pub gates: f64,
    /// Relative switching activity weight (1.0 = full datapath toggle).
    pub activity: f64,
}

impl Primitive {
    /// The primitive's gate cost.
    #[must_use]
    pub fn cost(self) -> GateCost {
        match self {
            Primitive::Comparator { bits } => GateCost {
                // Subtractor-style compare: ~1 XNOR + tree overhead per bit.
                gates: f64::from(bits) * (XNOR + 1.0),
                activity: 0.5,
            },
            Primitive::Adder { bits } => GateCost {
                gates: f64::from(bits) * FA,
                activity: 0.7,
            },
            Primitive::Multiplier { a_bits, b_bits } => GateCost {
                // Array multiplier: a×b partial-product cells ≈ FA each
                // (AND + adder cell amortized). Wider multipliers toggle
                // proportionally less: operand magnitudes do not grow with
                // word width, so the upper partial products (sign
                // extension) are largely static.
                gates: f64::from(a_bits) * f64::from(b_bits) * FA,
                activity: (0.5 + 4.0 / f64::from(a_bits.max(b_bits))).min(1.0),
            },
            Primitive::BarrelShifter { bits, stages } => GateCost {
                gates: f64::from(bits) * f64::from(stages) * MUX2,
                activity: 0.6,
            },
            Primitive::Register { bits } => GateCost {
                gates: f64::from(bits) * DFF,
                // LUT parameters are static during inference: clock + rare
                // data toggles only.
                activity: 0.15,
            },
            Primitive::PriorityEncoder { inputs } => GateCost {
                gates: f64::from(inputs) * 3.0,
                activity: 0.4,
            },
            Primitive::ReadMux { entries, bits } => GateCost {
                // (entries - 1) 2:1 mux bits per output bit.
                gates: f64::from(entries.saturating_sub(1)) * f64::from(bits) * MUX2,
                activity: 0.5,
            },
            Primitive::Fp32Multiplier => GateCost {
                // 24×24 mantissa array + 8-bit exponent adder + round/flags.
                // Mantissa bits toggle densely (normalized operands) but the
                // rounding/flag logic is mostly static.
                gates: 24.0 * 24.0 * FA + 8.0 * FA + 150.0,
                activity: 0.75,
            },
            Primitive::Fp32Adder => GateCost {
                // Align barrel (24b × 5 stages), 25-bit add, LZC (~60),
                // normalize barrel (24b × 5), rounding (~50).
                gates: 24.0 * 5.0 * MUX2 + 25.0 * FA + 60.0 + 24.0 * 5.0 * MUX2 + 50.0,
                activity: 0.9,
            },
            Primitive::Fp32Comparator => GateCost {
                // Sign/exponent/mantissa magnitude compare ≈ 32-bit compare
                // plus special-case logic.
                gates: 32.0 * (XNOR + 1.0) + 30.0,
                activity: 0.5,
            },
        }
    }

    /// Energy-weighted gate count (`gates × activity`), the dynamic-power
    /// proxy.
    #[must_use]
    pub fn active_gates(self) -> f64 {
        let c = self.cost();
        c.gates * c.activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_scales_quadratically() {
        let m8 = Primitive::Multiplier {
            a_bits: 8,
            b_bits: 8,
        }
        .cost()
        .gates;
        let m16 = Primitive::Multiplier {
            a_bits: 16,
            b_bits: 16,
        }
        .cost()
        .gates;
        let m32 = Primitive::Multiplier {
            a_bits: 32,
            b_bits: 32,
        }
        .cost()
        .gates;
        assert!((m16 / m8 - 4.0).abs() < 1e-9);
        assert!((m32 / m8 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn linear_blocks_scale_linearly() {
        for make in [
            |b| Primitive::Comparator { bits: b },
            |b| Primitive::Adder { bits: b },
            |b| Primitive::Register { bits: b },
        ] {
            let c8 = make(8).cost().gates;
            let c32 = make(32).cost().gates;
            assert!((c32 / c8 - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fp32_mult_larger_than_int8_mult() {
        let fp = Primitive::Fp32Multiplier.cost().gates;
        let int8 = Primitive::Multiplier {
            a_bits: 8,
            b_bits: 8,
        }
        .cost()
        .gates;
        assert!(fp > 8.0 * int8);
    }

    #[test]
    fn activities_bounded() {
        let prims = [
            Primitive::Comparator { bits: 8 },
            Primitive::Adder { bits: 8 },
            Primitive::Multiplier {
                a_bits: 8,
                b_bits: 8,
            },
            Primitive::BarrelShifter {
                bits: 16,
                stages: 4,
            },
            Primitive::Register { bits: 64 },
            Primitive::PriorityEncoder { inputs: 8 },
            Primitive::ReadMux {
                entries: 8,
                bits: 8,
            },
            Primitive::Fp32Multiplier,
            Primitive::Fp32Adder,
            Primitive::Fp32Comparator,
        ];
        for p in prims {
            let c = p.cost();
            assert!(c.gates > 0.0, "{p:?}");
            assert!((0.0..=1.0).contains(&c.activity), "{p:?}");
            assert!(p.active_gates() <= c.gates);
        }
    }
}
