//! Assembly of the complete pwl LUT unit from primitives.

use std::fmt;

use gqa_pwl::{LutFormat, LutStorage};

use crate::blocks::Primitive;
use crate::tech::TechnologyModel;

/// The input/parameter precision of a pwl unit (Table 6 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Quantization-aware INT8 unit (Figure 1b, λ = 5).
    Int8,
    /// Quantization-aware INT16 unit (Figure 1b).
    Int16,
    /// High-precision INT32 unit (Figure 1a).
    Int32,
    /// High-precision FP32 unit (Figure 1a; the NN-LUT / RI-LUT pattern).
    Fp32,
}

impl Precision {
    /// All Table 6 precisions, top to bottom.
    pub const ALL: [Precision; 4] = [
        Precision::Int8,
        Precision::Int16,
        Precision::Int32,
        Precision::Fp32,
    ];

    /// Stored word width in bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            Precision::Int8 => 8,
            Precision::Int16 => 16,
            Precision::Int32 | Precision::Fp32 => 32,
        }
    }

    /// Whether this is the quantization-aware pattern of Figure 1(b).
    #[must_use]
    pub fn quant_aware(self) -> bool {
        matches!(self, Precision::Int8 | Precision::Int16)
    }

    /// Row label as printed in Table 6.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Precision::Int8 => "INT8",
            Precision::Int16 => "INT16",
            Precision::Int32 => "INT32",
            Precision::Fp32 => "FP32",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A fully assembled N-entry pwl unit at a given precision.
///
/// Structure (Figure 1):
/// * N−1 input comparators + priority encoder (entry select),
/// * LUT register file (slopes, intercepts, breakpoints) + read muxes,
/// * `k_i · x` multiplier and the output accumulator adder,
/// * for the quant-aware pattern: the run-time intercept shifter
///   (`b_i ≫ log2 S`) and the output scale shifter,
/// * input/output pipeline registers.
#[derive(Debug, Clone, PartialEq)]
pub struct PwlUnit {
    precision: Precision,
    entries: usize,
    primitives: Vec<Primitive>,
}

impl PwlUnit {
    /// Assembles the unit.
    ///
    /// # Panics
    ///
    /// Panics if `entries < 2`.
    #[must_use]
    pub fn new(precision: Precision, entries: usize) -> Self {
        assert!(entries >= 2, "a LUT unit needs at least 2 entries");
        let bits = precision.bits();
        let n = entries as u32;
        let storage = LutStorage::new(
            match precision {
                Precision::Int8 => LutFormat::QuantAware { bits, lambda: 5 },
                Precision::Int16 => LutFormat::QuantAware { bits, lambda: 5 },
                Precision::Int32 | Precision::Fp32 => LutFormat::HighPrecision { bits },
            },
            entries,
        );

        let mut prims = Vec::new();
        // Entry selection.
        match precision {
            Precision::Fp32 => {
                for _ in 0..n - 1 {
                    prims.push(Primitive::Fp32Comparator);
                }
            }
            _ => {
                for _ in 0..n - 1 {
                    prims.push(Primitive::Comparator { bits });
                }
            }
        }
        prims.push(Primitive::PriorityEncoder { inputs: n - 1 });

        // Parameter storage + read muxes for slope and intercept.
        prims.push(Primitive::Register {
            bits: storage.total_bits() as u32,
        });
        prims.push(Primitive::ReadMux { entries: n, bits });
        prims.push(Primitive::ReadMux { entries: n, bits });

        // Arithmetic datapath.
        match precision {
            Precision::Fp32 => {
                prims.push(Primitive::Fp32Multiplier);
                prims.push(Primitive::Fp32Adder);
            }
            _ => {
                prims.push(Primitive::Multiplier {
                    a_bits: bits,
                    b_bits: bits,
                });
                // Accumulator at product width.
                prims.push(Primitive::Adder { bits: bits * 2 });
            }
        }

        // Quant-aware pattern: intercept shifter (b >> log2 S) and output
        // scale shifter (Figure 1b).
        if precision.quant_aware() {
            let stages = 4; // shifts up to ±15 cover every paper scale
            prims.push(Primitive::BarrelShifter {
                bits: bits * 2,
                stages,
            });
            prims.push(Primitive::BarrelShifter {
                bits: bits * 2,
                stages,
            });
        }

        // I/O pipeline registers (input word + output accumulator).
        prims.push(Primitive::Register { bits });
        prims.push(Primitive::Register { bits: bits * 2 });

        Self {
            precision,
            entries,
            primitives: prims,
        }
    }

    /// The precision row this unit models.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of LUT entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// The counted primitives.
    #[must_use]
    pub fn primitives(&self) -> &[Primitive] {
        &self.primitives
    }

    /// Total NAND2 gate equivalents.
    #[must_use]
    pub fn gates(&self) -> f64 {
        self.primitives.iter().map(|p| p.cost().gates).sum()
    }

    /// Activity-weighted gate equivalents (dynamic-power proxy).
    #[must_use]
    pub fn active_gates(&self) -> f64 {
        self.primitives.iter().map(|p| p.active_gates()).sum()
    }

    /// Silicon area under the given technology model.
    #[must_use]
    pub fn area_um2(&self, tech: &TechnologyModel) -> f64 {
        tech.area_um2(self.gates())
    }

    /// Power dissipation under the given technology model.
    #[must_use]
    pub fn power_mw(&self, tech: &TechnologyModel) -> f64 {
        tech.power_mw(self.gates(), self.active_gates())
    }
}

impl fmt::Display for PwlUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}-entry pwl unit ({:.0} GE)",
            self.precision,
            self.entries,
            self.gates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_increase_with_precision() {
        let g: Vec<f64> = Precision::ALL
            .iter()
            .map(|&p| PwlUnit::new(p, 8).gates())
            .collect();
        assert!(g[0] < g[1], "INT8 < INT16");
        assert!(g[1] < g[2], "INT16 < INT32");
        // FP32 is in the same league as INT32 (paper: slightly smaller area,
        // slightly higher power).
        assert!(
            (g[3] / g[2] - 1.0).abs() < 0.35,
            "FP32 {} vs INT32 {}",
            g[3],
            g[2]
        );
    }

    #[test]
    fn entries_scale_area_sublinearly() {
        // Paper: 16-entry INT8 ≈ 1.71× the 8-entry area.
        let a8 = PwlUnit::new(Precision::Int8, 8).gates();
        let a16 = PwlUnit::new(Precision::Int8, 16).gates();
        let ratio = a16 / a8;
        assert!((1.4..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn quant_aware_has_shifters() {
        let int8 = PwlUnit::new(Precision::Int8, 8);
        let shifters = int8
            .primitives()
            .iter()
            .filter(|p| matches!(p, Primitive::BarrelShifter { .. }))
            .count();
        assert_eq!(shifters, 2);
        let fp = PwlUnit::new(Precision::Fp32, 8);
        assert!(!fp
            .primitives()
            .iter()
            .any(|p| matches!(p, Primitive::BarrelShifter { .. })));
    }

    #[test]
    fn int8_anchor_ratios_match_paper_band() {
        // Structural ratios before calibration: INT32/INT8 area ≈ 5.46× in
        // the paper; accept a generous band for the uncalibrated model.
        let a8 = PwlUnit::new(Precision::Int8, 8).gates();
        let a32 = PwlUnit::new(Precision::Int32, 8).gates();
        let r = a32 / a8;
        assert!((4.0..7.0).contains(&r), "INT32/INT8 gate ratio {r}");
    }

    #[test]
    #[should_panic(expected = "at least 2 entries")]
    fn one_entry_rejected() {
        let _ = PwlUnit::new(Precision::Int8, 1);
    }
}
