//! # gqa-hardware — LUT pwl unit cost model (Table 6)
//!
//! The paper synthesizes the two LUT execution units of Figure 1 with
//! Synopsys DC on TSMC 28 nm at 500 MHz and reports area and power
//! (Table 6). Without the proprietary PDK this crate reproduces the
//! experiment with a **structural gate-level model**: every unit is
//! assembled from counted primitives (comparators, priority encoder,
//! register file, array multiplier, carry adders, barrel shifters, FP32
//! datapath blocks), sized in NAND2 gate equivalents (GE), and converted
//! to µm² / mW with two technology constants calibrated to the paper's
//! INT8 / 8-entry anchor point (961 µm², 0.40 mW).
//!
//! What the model must get right is the *relative* cost across
//! {INT8, INT16, INT32, FP32} × {8, 16} entries — that is structure, not
//! PDK detail: storage and comparators scale linearly with word width, the
//! multiplier quadratically, and the FP32 datapath adds
//! alignment/normalization machinery.
//!
//! A parameterized Verilog generator ([`verilog::emit_pwl_unit`]) emits
//! synthesizable RTL of the same unit for users who do have a flow.
//!
//! ## Example
//!
//! ```
//! use gqa_hardware::{PwlUnit, Precision, TechnologyModel};
//!
//! let tech = TechnologyModel::tsmc28_500mhz();
//! let unit = PwlUnit::new(Precision::Int8, 8);
//! let area = unit.area_um2(&tech);
//! assert!((area - 961.0).abs() / 961.0 < 0.05); // calibrated anchor
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod tech;
mod unit;
pub mod verilog;

pub use blocks::{GateCost, Primitive};
pub use tech::TechnologyModel;
pub use unit::{Precision, PwlUnit};
