//! Technology calibration: GE → µm² and GE·activity → mW.

/// Converts structural gate counts into physical area and power.
///
/// Two constants are calibrated so the INT8 / 8-entry unit lands on the
/// paper's synthesized anchor (961 µm², 0.40 mW at 500 MHz, TSMC 28 nm);
/// every other number in Table 6 is then produced by the *structure* of
/// the units, which is the claim under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyModel {
    /// µm² per NAND2 gate equivalent (includes placement overhead).
    pub um2_per_ge: f64,
    /// mW per activity-weighted GE at the configured frequency
    /// (dynamic switching + amortized clock tree).
    pub mw_per_active_ge: f64,
    /// Leakage mW per GE.
    pub mw_leak_per_ge: f64,
    /// Operating frequency in MHz (bookkeeping; the power constant already
    /// includes it).
    pub freq_mhz: f64,
}

impl TechnologyModel {
    /// TSMC-28nm-like constants at 500 MHz, calibrated to the paper's
    /// INT8 / 8-entry anchor point.
    #[must_use]
    pub fn tsmc28_500mhz() -> Self {
        // The INT8/8-entry unit assembles to ~2.1 kGE with ~0.9 kGE
        // activity-weighted; 961 µm² / 0.40 mW then fix the two constants.
        Self {
            um2_per_ge: 0.4609,
            mw_per_active_ge: 3.97e-4,
            mw_leak_per_ge: 2.0e-5,
            freq_mhz: 500.0,
        }
    }

    /// Area of `gates` GE.
    #[must_use]
    pub fn area_um2(&self, gates: f64) -> f64 {
        gates * self.um2_per_ge
    }

    /// Power of a block with `gates` total GE and `active_gates`
    /// activity-weighted GE.
    #[must_use]
    pub fn power_mw(&self, gates: f64, active_gates: f64) -> f64 {
        active_gates * self.mw_per_active_ge + gates * self.mw_leak_per_ge
    }

    /// Rescales the dynamic-power constant for a different frequency
    /// (dynamic power is linear in f; leakage is not).
    #[must_use]
    pub fn at_frequency(mut self, freq_mhz: f64) -> Self {
        assert!(freq_mhz > 0.0, "frequency must be positive");
        self.mw_per_active_ge *= freq_mhz / self.freq_mhz;
        self.freq_mhz = freq_mhz;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_linear_in_gates() {
        let t = TechnologyModel::tsmc28_500mhz();
        assert!((t.area_um2(2000.0) - 2.0 * t.area_um2(1000.0)).abs() < 1e-9);
    }

    #[test]
    fn power_has_dynamic_and_leakage() {
        let t = TechnologyModel::tsmc28_500mhz();
        let all_static = t.power_mw(1000.0, 0.0);
        let active = t.power_mw(1000.0, 1000.0);
        assert!(all_static > 0.0);
        assert!(active > all_static);
    }

    #[test]
    fn frequency_scaling_affects_dynamic_only() {
        let t = TechnologyModel::tsmc28_500mhz();
        let t250 = t.at_frequency(250.0);
        assert!((t250.mw_per_active_ge - t.mw_per_active_ge / 2.0).abs() < 1e-12);
        assert_eq!(t250.mw_leak_per_ge, t.mw_leak_per_ge);
        assert_eq!(t250.freq_mhz, 250.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = TechnologyModel::tsmc28_500mhz().at_frequency(0.0);
    }
}
