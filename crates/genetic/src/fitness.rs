//! The fitness evaluator: Algorithm 1's grid MSE, computed efficiently.
//!
//! Algorithm 1 evaluates every individual by (a) deriving segment lines
//! from its breakpoints and (b) accumulating squared error over the
//! `step = 0.01` grid. A naive implementation re-samples `f` per individual;
//! since the grid is fixed per search, this evaluator precomputes
//! `f` on the grid once plus prefix sums of `x, y, x², xy`, making the
//! per-segment least-squares fit O(log n) and the MSE pass O(n) with no
//! further calls to `f`.

use std::sync::Arc;

use gqa_pwl::{Pwl, SegmentFit};

/// Shared, reusable fitness machinery for one `(f, range, step)` triple.
pub struct FitnessEvaluator {
    f: Arc<dyn Fn(f64) -> f64 + Send + Sync>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    // Prefix sums (length n+1): p*[i] = Σ_{j<i} …
    px: Vec<f64>,
    py: Vec<f64>,
    pxx: Vec<f64>,
    pxy: Vec<f64>,
    range: (f64, f64),
    segment_fit: SegmentFit,
}

impl std::fmt::Debug for FitnessEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitnessEvaluator")
            .field("grid_points", &self.xs.len())
            .field("range", &self.range)
            .field("segment_fit", &self.segment_fit)
            .finish()
    }
}

impl FitnessEvaluator {
    /// Builds the evaluator, sampling `f` once on the Algorithm-1 grid
    /// `x = Rn, Rn+step, …` (the paper's "Data Size" points).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, `step` is non-positive, or `f`
    /// returns a non-finite value on the grid.
    #[must_use]
    pub fn new(
        f: Arc<dyn Fn(f64) -> f64 + Send + Sync>,
        range: (f64, f64),
        step: f64,
        segment_fit: SegmentFit,
    ) -> Self {
        // Shared grid rule (gqa_funcs::grid_len): exact for Table-1 sizes,
        // correct for non-dyadic steps.
        let mut xs = Vec::new();
        gqa_funcs::fill_grid(range, step, &mut xs);
        let n = xs.len();
        assert!(n >= 2, "grid too coarse");
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                let y = f(x);
                assert!(y.is_finite(), "f({x}) is not finite");
                y
            })
            .collect();
        let mut px = Vec::with_capacity(n + 1);
        let mut py = Vec::with_capacity(n + 1);
        let mut pxx = Vec::with_capacity(n + 1);
        let mut pxy = Vec::with_capacity(n + 1);
        let (mut ax, mut ay, mut axx, mut axy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        px.push(0.0);
        py.push(0.0);
        pxx.push(0.0);
        pxy.push(0.0);
        for i in 0..n {
            ax += xs[i];
            ay += ys[i];
            axx += xs[i] * xs[i];
            axy += xs[i] * ys[i];
            px.push(ax);
            py.push(ay);
            pxx.push(axx);
            pxy.push(axy);
        }
        Self {
            f,
            xs,
            ys,
            px,
            py,
            pxx,
            pxy,
            range,
            segment_fit,
        }
    }

    /// Number of grid points (the paper's "Data Size").
    #[must_use]
    pub fn data_size(&self) -> usize {
        self.xs.len()
    }

    /// The search range.
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        self.range
    }

    /// Derives the pwl for a breakpoint set
    /// (Algorithm 1 line 21: "K*, B* ← Derived from P*").
    ///
    /// Breakpoints are clamped into the range and sorted. Least-squares
    /// segments are fitted over the grid points they cover (via prefix
    /// sums); segments covering fewer than two grid points fall back to
    /// endpoint interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `breakpoints` is empty.
    #[must_use]
    pub fn derive_pwl(&self, breakpoints: &[f64]) -> Pwl {
        assert!(!breakpoints.is_empty(), "need at least one breakpoint");
        let (rn, rp) = self.range;
        let mut bps: Vec<f64> = breakpoints.iter().map(|&p| p.clamp(rn, rp)).collect();
        bps.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));

        let mut knots = Vec::with_capacity(bps.len() + 2);
        knots.push(rn);
        knots.extend_from_slice(&bps);
        knots.push(rp);

        let n = bps.len() + 1;
        let mut slopes = Vec::with_capacity(n);
        let mut intercepts = Vec::with_capacity(n);
        for s in 0..n {
            let (lo, hi) = (knots[s], knots[s + 1]);
            let (k, b) = match self.segment_fit {
                SegmentFit::Interpolate => self.interpolate_segment(lo, hi),
                SegmentFit::LeastSquares => self.least_squares_segment(lo, hi),
            };
            slopes.push(k);
            intercepts.push(b);
        }
        Pwl::new(slopes, intercepts, bps).expect("validated construction")
    }

    fn interpolate_segment(&self, lo: f64, hi: f64) -> (f64, f64) {
        if hi - lo < 1e-12 {
            // Degenerate segment: local secant instead of a constant (see
            // gqa_pwl::fit for why a constant is dangerous under clipped
            // breakpoint quantization).
            let h = 1e-3;
            let f = &self.f;
            let k = (f(hi + h) - f(lo - h)) / (2.0 * h + (hi - lo));
            return (k, f(lo) - k * lo);
        }
        let (ylo, yhi) = ((self.f)(lo), (self.f)(hi));
        let k = (yhi - ylo) / (hi - lo);
        (k, ylo - k * lo)
    }

    fn least_squares_segment(&self, lo: f64, hi: f64) -> (f64, f64) {
        // Grid points with lo <= x < hi (last segment also takes x = hi via
        // the grid simply not containing rp).
        let i0 = self.xs.partition_point(|&x| x < lo);
        let i1 = self.xs.partition_point(|&x| x < hi);
        let m = i1.saturating_sub(i0);
        if m < 2 {
            return self.interpolate_segment(lo, hi);
        }
        let nf = m as f64;
        let sx = self.px[i1] - self.px[i0];
        let sy = self.py[i1] - self.py[i0];
        let sxx = self.pxx[i1] - self.pxx[i0];
        let sxy = self.pxy[i1] - self.pxy[i0];
        let denom = sxx - sx * sx / nf;
        if denom.abs() < 1e-12 {
            return self.interpolate_segment(lo, hi);
        }
        let k = (sxy - sx * sy / nf) / denom;
        let b = (sy - k * sx) / nf;
        (k, b)
    }

    /// Grid MSE of a pwl against the precomputed reference
    /// (Algorithm 1 lines 6–8).
    ///
    /// The sorted grid is swept in fixed-size chunks (stack-resident, so
    /// the call allocates nothing) directly through
    /// [`Pwl::eval_sorted_batch`] — the grid is ascending by
    /// construction, so the sortedness scan of the generic
    /// [`BatchEval`](gqa_funcs::BatchEval) entry point is skipped and
    /// each chunk goes straight to the
    /// wide-lane segment kernel.
    ///
    /// The squared-error accumulation is deliberately the *sequential*
    /// sum, not the SIMD reduction used by `gqa_pwl::eval::MseGrid`: the
    /// island-model golden tests (`tests/islands.rs`) pin `best_mse` bit
    /// patterns captured from the pre-island engine, and those depend on
    /// this exact summation order. Do not "vectorize" this loop.
    #[must_use]
    pub fn mse(&self, pwl: &Pwl) -> f64 {
        const CHUNK: usize = 256;
        let mut buf = [0.0f64; CHUNK];
        let mut acc = 0.0f64;
        for (xc, yc) in self.xs.chunks(CHUNK).zip(self.ys.chunks(CHUNK)) {
            let out = &mut buf[..xc.len()];
            pwl.eval_sorted_batch(xc, out);
            for (&y_hat, &y) in out.iter().zip(yc) {
                let d = y_hat - y;
                acc += d * d;
            }
        }
        acc / self.xs.len() as f64
    }

    /// Derives the pwl and scores it in one call.
    #[must_use]
    pub fn fitness(&self, breakpoints: &[f64]) -> (Pwl, f64) {
        let pwl = self.derive_pwl(breakpoints);
        let mse = self.mse(&pwl);
        (pwl, mse)
    }

    /// Quantization-aware fitness: derives the pwl, rounds its slopes and
    /// intercepts onto the λ-fractional-bit grid (the storage format of
    /// Algorithm 1 line 22), and scores the *rounded* approximant. This
    /// lets the evolution select breakpoints whose optimal line parameters
    /// are FXP-friendly, which is what makes the search quantization-aware
    /// beyond breakpoints alone.
    #[must_use]
    pub fn fitness_fxp(&self, breakpoints: &[f64], lambda: u32) -> (Pwl, f64) {
        let pwl = self.derive_pwl(breakpoints);
        let rounded = pwl
            .map_params(
                |k| gqa_fxp::round_to_fraction_bits(k, lambda as i32),
                |b| gqa_fxp::round_to_fraction_bits(b, lambda as i32),
                |p| p,
            )
            .expect("rounding finite parameters");
        let mse = self.mse(&rounded);
        (rounded, mse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_funcs::NonLinearOp;

    fn gelu_eval(fit: SegmentFit) -> FitnessEvaluator {
        FitnessEvaluator::new(
            Arc::new(|x| NonLinearOp::Gelu.eval(x)),
            (-4.0, 4.0),
            0.01,
            fit,
        )
    }

    #[test]
    fn data_size_matches_paper() {
        assert_eq!(gelu_eval(SegmentFit::LeastSquares).data_size(), 800);
    }

    #[test]
    fn prefix_sum_ls_matches_direct_fit() {
        // The evaluator's grid-based LS must agree closely with the pwl
        // crate's dense-sample LS.
        let ev = gelu_eval(SegmentFit::LeastSquares);
        let bps = [-2.5, -1.5, -0.8, -0.3, 0.3, 0.9, 2.0];
        let fast = ev.derive_pwl(&bps);
        let slow = gqa_pwl::fit::fit_pwl(
            &|x| NonLinearOp::Gelu.eval(x),
            (-4.0, 4.0),
            &bps,
            SegmentFit::LeastSquares,
        )
        .unwrap();
        for (kf, ks) in fast.slopes().iter().zip(slow.slopes()) {
            assert!((kf - ks).abs() < 0.02, "slope {kf} vs {ks}");
        }
        let m_fast = ev.mse(&fast);
        let m_slow = ev.mse(&slow);
        assert!((m_fast - m_slow).abs() < 1e-5, "{m_fast} vs {m_slow}");
    }

    #[test]
    fn interpolation_mode_is_exact_at_knots() {
        let ev = gelu_eval(SegmentFit::Interpolate);
        let bps = [-2.0, 0.0, 2.0];
        let pwl = ev.derive_pwl(&bps);
        for &p in &bps {
            assert!((pwl.eval(p) - NonLinearOp::Gelu.eval(p)).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_segments_fall_back() {
        let ev = gelu_eval(SegmentFit::LeastSquares);
        // Two nearly identical breakpoints create a < 2-point segment.
        let pwl = ev.derive_pwl(&[0.5, 0.500001, 1.0]);
        assert_eq!(pwl.num_entries(), 4);
        assert!(ev.mse(&pwl).is_finite());
    }

    #[test]
    fn mse_decreases_with_more_breakpoints() {
        let ev = gelu_eval(SegmentFit::LeastSquares);
        let uniform = |n: usize| -> Vec<f64> {
            (1..=n)
                .map(|i| -4.0 + 8.0 * i as f64 / (n + 1) as f64)
                .collect()
        };
        let (_, m3) = ev.fitness(&uniform(3));
        let (_, m7) = ev.fitness(&uniform(7));
        let (_, m15) = ev.fitness(&uniform(15));
        assert!(m7 < m3);
        assert!(m15 < m7);
    }

    #[test]
    fn breakpoints_outside_range_clamped() {
        let ev = gelu_eval(SegmentFit::LeastSquares);
        let pwl = ev.derive_pwl(&[-100.0, 0.0, 100.0]);
        assert!(pwl.breakpoints().iter().all(|&p| (-4.0..=4.0).contains(&p)));
    }
}
