//! Mutation operators: Gaussian noise (baseline) and Rounding Mutation
//! (Algorithm 2).

use rand::Rng;

use gqa_fxp::round_to_fraction_bits;

/// In-place Gaussian mutation: adds zero-mean noise with the given standard
/// deviation to every breakpoint, clamps into `range`, and re-sorts.
///
/// This is the conventional operator the paper's "GQA-LUT w/o RM" uses
/// ("mutation introduces a normal distribution of noise", §3.2).
///
/// The normal deviates are produced by a Box–Muller transform so the crate
/// needs no randomness beyond `rand`'s uniform source.
pub fn gaussian_mutation<R: Rng + ?Sized>(
    breakpoints: &mut [f64],
    std: f64,
    range: (f64, f64),
    rng: &mut R,
) {
    for p in breakpoints.iter_mut() {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        *p = (*p + std * z).clamp(range.0, range.1);
    }
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"));
}

/// In-place Rounding Mutation (Algorithm 2).
///
/// For each breakpoint `p`, draw `rand_p ∈ [0, 1)`; for
/// `i ∈ [m_a, m_b]`, if `i·θ_r ≤ rand_p < (i+1)·θ_r`, replace `p` with
/// `⌊p·2^i⌉ / 2^i` (snap to `i` fractional bits) and stop — each element
/// mutates at most once. Finally the set is sorted ascending ("ensure
/// correct order").
///
/// Note the total per-element mutation probability is
/// `(m_b − m_a + 1)·θ_r` (0.35 with the paper's GELU setting
/// `θ_r = 0.05, [m_a, m_b] = [0, 6]`), and that the *interval test* is on
/// the absolute index `i`, so with `m_a = 2` (EXP) indices 0 and 1 leave a
/// dead zone in `[0, 2θ_r)` where nothing mutates — faithful to the paper's
/// pseudo-code.
///
/// With `θ_r = 0` (DIV/RSQRT rows of Table 1) this is a no-op apart from
/// the sort.
pub fn rounding_mutation<R: Rng + ?Sized>(
    breakpoints: &mut [f64],
    theta_r: f64,
    mutate_range: (u32, u32),
    rng: &mut R,
) {
    let (ma, mb) = mutate_range;
    debug_assert!(ma <= mb);
    for p in breakpoints.iter_mut() {
        let rand_p: f64 = rng.gen_range(0.0..1.0);
        if theta_r <= 0.0 {
            continue;
        }
        for i in ma..=mb {
            let lo = i as f64 * theta_r;
            let hi = (i + 1) as f64 * theta_r;
            if rand_p >= lo && rand_p < hi {
                *p = round_to_fraction_bits(*p, i as i32);
                break; // mutate only once
            }
        }
    }
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sorted(v: &[f64]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1])
    }

    #[test]
    fn gaussian_keeps_range_and_order() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bps = vec![-3.0, -1.0, 0.0, 2.0, 3.5];
        for _ in 0..100 {
            gaussian_mutation(&mut bps, 0.4, (-4.0, 4.0), &mut rng);
            assert!(sorted(&bps));
            assert!(bps.iter().all(|&p| (-4.0..=4.0).contains(&p)));
        }
    }

    #[test]
    fn gaussian_actually_moves_points() {
        let mut rng = StdRng::seed_from_u64(2);
        let orig = vec![-1.0, 0.0, 1.0];
        let mut bps = orig.clone();
        gaussian_mutation(&mut bps, 0.5, (-4.0, 4.0), &mut rng);
        assert_ne!(bps, orig);
    }

    #[test]
    fn rounding_snaps_to_fxp_grid() {
        let mut rng = StdRng::seed_from_u64(3);
        // θr large enough that every element mutates (range [0,1] ⇒ 2 steps
        // × 0.5 = total prob 1).
        let mut bps = vec![-2.34567, -0.11111, 0.98765, 3.14151];
        rounding_mutation(&mut bps, 0.5, (0, 1), &mut rng);
        for &p in &bps {
            // Every value is now on the 0- or 1-fractional-bit grid.
            let on_grid =
                (p * 2.0 - (p * 2.0).round()).abs() < 1e-12 || (p - p.round()).abs() < 1e-12;
            assert!(on_grid, "{p} not on grid");
        }
        assert!(sorted(&bps));
    }

    #[test]
    fn rounding_with_zero_theta_is_identity_up_to_sort() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut bps = vec![0.3, -1.7, 2.9];
        rounding_mutation(&mut bps, 0.0, (0, 6), &mut rng);
        assert_eq!(bps, vec![-1.7, 0.3, 2.9]);
    }

    #[test]
    fn rounding_mutation_rate_matches_theory() {
        // With θr = 0.05 and [0, 6], per-element mutation probability is
        // 0.35. Empirically verify within 3σ.
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 20_000;
        let mut mutated = 0usize;
        for _ in 0..trials {
            let mut bps = vec![0.123456789];
            rounding_mutation(&mut bps, 0.05, (0, 6), &mut rng);
            if (bps[0] - 0.123456789).abs() > 1e-15 {
                mutated += 1;
            }
        }
        let rate = mutated as f64 / trials as f64;
        assert!((rate - 0.35).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn exp_dead_zone_respected() {
        // With m_a = 2, rand_p < 2·θr never mutates; coarse grids (0 or 1
        // fractional bits) are never produced by snapping a value that
        // isn't already on them.
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..2000 {
            let mut bps = vec![-5.43210987];
            rounding_mutation(&mut bps, 0.05, (2, 6), &mut rng);
            if (bps[0] + 5.43210987).abs() > 1e-15 {
                // Mutated: snapped to i ∈ [2, 6] fractional bits. Every such
                // grid is a sub-grid of the 6-bit one (multiples of 1/64),
                // and the 0-bit snap of the seed (-5.0) is unreachable
                // because round(-5.432·2^i)/2^i ≠ -5 for all i ≥ 2.
                let s6 = bps[0] * 64.0;
                assert!(
                    (s6 - s6.round()).abs() < 1e-9,
                    "{} not on 6-bit grid",
                    bps[0]
                );
                assert!(
                    (bps[0] - (-5.0)).abs() > 1e-12,
                    "hit the forbidden 0-bit snap"
                );
            }
        }
    }

    #[test]
    fn rounding_is_idempotent_on_grid_values() {
        let mut rng = StdRng::seed_from_u64(7);
        // Values already on the finest grid (6 fractional bits) can only
        // move to coarser grids, which are subsets — so a second pass with
        // the same snap target changes nothing.
        let mut bps = vec![-1.5, 0.25, 2.0];
        let orig = bps.clone();
        rounding_mutation(&mut bps, 0.125, (0, 2), &mut rng);
        // 0.25 on 2-bit grid, others on 1-bit: only coarser snaps change
        // values; with these inputs any snap to ≥0 bits keeps -1.5→-1 or -2
        // possible. Just verify sortedness and grid membership.
        assert!(sorted(&bps));
        for (&p, &o) in bps.iter().zip(&orig) {
            if (p - o).abs() > 1e-15 {
                assert!((p * 4.0 - (p * 4.0).round()).abs() < 1e-12);
            }
        }
    }
}
