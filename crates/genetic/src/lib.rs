//! # gqa-genetic — the GQA-LUT genetic search (Algorithms 1 and 2)
//!
//! This crate is the paper's primary contribution: a genetic algorithm that
//! evolves pwl *breakpoint sets* with quantization awareness.
//!
//! * [`SearchConfig`] — all hyper-parameters, with [`SearchConfig::for_op`]
//!   reproducing Table 1 exactly (`N_b = 7`, `N_p = 50`, `θ_c = 0.7`,
//!   `θ_m = 0.2`, `T = 500`, `λ = 5`, per-op ranges and RM settings).
//! * [`GeneticSearch`] — Algorithm 1: population init, grid-MSE fitness
//!   (step 0.01), segment-swap crossover, mutation, 3-way tournament
//!   selection, and the final FXP conversion of slopes/intercepts.
//! * [`mutation`] — both mutation operators: the baseline Gaussian noise
//!   ("GQA-LUT w/o RM") and the Rounding Mutation of Algorithm 2
//!   ("GQA-LUT w/ RM"), which *images FXP conversion as mutation* so the
//!   population internalizes breakpoint-deviation error.
//!
//! ## Example
//!
//! ```
//! use gqa_genetic::{GeneticSearch, SearchConfig, MutationKind};
//! use gqa_funcs::NonLinearOp;
//!
//! // Paper defaults, shrunk for the doctest.
//! let cfg = SearchConfig::for_op(NonLinearOp::Exp)
//!     .with_generations(30)
//!     .with_population(20)
//!     .with_seed(42);
//! let result = GeneticSearch::new(cfg).run();
//! assert_eq!(result.pwl().num_entries(), 8);
//! assert!(result.best_mse() < 1e-2);
//! ```

//!
//! ## The `simd` feature (default-on)
//!
//! Forwarded to `gqa-pwl`: fitness scoring sweeps the sorted grid
//! through the wide-lane segment kernels. Search results are identical
//! bit for bit with the feature on or off — the golden tests in
//! `tests/islands.rs` are run both ways in CI.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
mod fitness;
pub mod mutation;
#[cfg(feature = "parallel")]
mod pool;
mod search;
mod selection;

pub use config::{FitnessMode, MutationKind, SearchConfig};
pub use fitness::FitnessEvaluator;
pub use search::{GeneticSearch, IslandRun, SearchResult};
pub use selection::tournament_select;
