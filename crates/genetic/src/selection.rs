//! Tournament selection (Algorithm 1, line 18).

use rand::Rng;

/// K-way tournament selection: returns the index of the fittest (lowest
/// MSE) of `k` individuals drawn uniformly **with replacement** from
/// `fitness`.
///
/// The paper uses `k = 3` ("3-size tournament selection").
///
/// # Panics
///
/// Panics if `fitness` is empty or `k == 0`.
pub fn tournament_select<R: Rng + ?Sized>(fitness: &[f64], k: usize, rng: &mut R) -> usize {
    assert!(!fitness.is_empty(), "empty population");
    assert!(k >= 1, "tournament size must be at least 1");
    let mut best = rng.gen_range(0..fitness.len());
    for _ in 1..k {
        let challenger = rng.gen_range(0..fitness.len());
        if fitness[challenger] < fitness[best] {
            best = challenger;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn always_returns_valid_index() {
        let mut rng = StdRng::seed_from_u64(1);
        let fitness = vec![0.5, 0.1, 0.9, 0.3];
        for _ in 0..1000 {
            let i = tournament_select(&fitness, 3, &mut rng);
            assert!(i < fitness.len());
        }
    }

    #[test]
    fn favors_fitter_individuals() {
        let mut rng = StdRng::seed_from_u64(2);
        // Index 0 is far fitter; with k = 3 it should win the plurality.
        let fitness = vec![0.01, 1.0, 1.0, 1.0, 1.0];
        let mut wins = 0usize;
        let trials = 10_000;
        for _ in 0..trials {
            if tournament_select(&fitness, 3, &mut rng) == 0 {
                wins += 1;
            }
        }
        // P(win) = 1 - (4/5)^3 = 0.488
        let rate = wins as f64 / trials as f64;
        assert!((rate - 0.488).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn k1_is_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let fitness = vec![0.0, 100.0];
        let mut zeros = 0usize;
        for _ in 0..10_000 {
            if tournament_select(&fitness, 1, &mut rng) == 0 {
                zeros += 1;
            }
        }
        let rate = zeros as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn larger_k_increases_pressure() {
        let mut rng = StdRng::seed_from_u64(4);
        let fitness: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let win_rate = |k: usize, rng: &mut StdRng| {
            let mut wins = 0;
            for _ in 0..5000 {
                if tournament_select(&fitness, k, rng) == 0 {
                    wins += 1;
                }
            }
            wins as f64 / 5000.0
        };
        let r2 = win_rate(2, &mut rng);
        let r5 = win_rate(5, &mut rng);
        assert!(r5 > r2, "k=5 rate {r5} should exceed k=2 rate {r2}");
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = tournament_select(&[], 3, &mut rng);
    }
}
