//! The persistent scoring pool (`parallel` feature).
//!
//! Earlier revisions spawned scoped OS threads *per generation*; at the
//! paper's T = 500 that is 500 × W spawns per search. The pool here is
//! spawned once per [`crate::IslandRun`] and fed scoring jobs over a
//! channel, so the per-generation cost is one channel round-trip per
//! chunk. Workers are plain `std::thread` — jobs own `Arc` handles to the
//! population and scorer, so no scoped lifetimes are needed.
//!
//! Determinism: a job scores a contiguous index range and the results are
//! written back by range start, so the assembled score vector is identical
//! to a serial sweep regardless of worker scheduling.

use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::search::Scorer;

/// One scoring task: evaluate `pop[range]` and send the scores back
/// tagged with the range start.
struct Job {
    pop: Arc<Vec<Vec<f64>>>,
    range: Range<usize>,
    scorer: Arc<Scorer>,
    out: Sender<(usize, Vec<f64>)>,
}

/// A fixed set of worker threads draining a shared job queue. Dropping the
/// pool closes the queue and joins every worker.
pub(crate) struct ScoringPool {
    job_tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ScoringPool {
    /// Spawns `threads` workers (at least one).
    pub(crate) fn spawn(threads: usize) -> Self {
        let threads = threads.max(1);
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&job_rx);
                std::thread::spawn(move || worker_loop(&rx))
            })
            .collect();
        Self {
            job_tx: Some(job_tx),
            workers,
        }
    }

    /// Scores `pop` into `out` (same length), sharding into `chunks`
    /// contiguous ranges across the workers.
    ///
    /// # Panics
    ///
    /// Panics if a worker died mid-job (its result channel closes). The
    /// worker's own panic payload is not re-raised — scoring is pure, so
    /// a worker panic indicates a bug in the fitness path; the payload is
    /// printed to stderr by the standard panic hook when it happens.
    pub(crate) fn score_into(
        &self,
        scorer: &Arc<Scorer>,
        pop: &Arc<Vec<Vec<f64>>>,
        chunks: usize,
        out: &mut [f64],
    ) {
        let n = pop.len();
        debug_assert_eq!(n, out.len());
        let chunk = n.div_ceil(chunks.max(1)).max(1);
        let (res_tx, res_rx) = channel::<(usize, Vec<f64>)>();
        let tx = self.job_tx.as_ref().expect("pool is live");
        let mut outstanding = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + chunk).min(n);
            tx.send(Job {
                pop: Arc::clone(pop),
                range: start..end,
                scorer: Arc::clone(scorer),
                out: res_tx.clone(),
            })
            .expect("scoring workers alive");
            outstanding += 1;
            start = end;
        }
        drop(res_tx);
        for _ in 0..outstanding {
            let (at, scores) = res_rx.recv().expect("scoring worker delivered");
            out[at..at + scores.len()].copy_from_slice(&scores);
        }
    }
}

impl Drop for ScoringPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        drop(self.job_tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the lock only for the dequeue, not for the scoring work.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(Job {
            pop,
            range,
            scorer,
            out,
        }) = job
        else {
            return;
        };
        let scores: Vec<f64> = pop[range.clone()].iter().map(|p| scorer.score(p)).collect();
        // Release the shared-population handle *before* announcing the
        // result: the consumer reclaims the population with
        // Arc::try_unwrap right after the last recv, and a still-alive
        // clone here would force it into a full population copy.
        drop(pop);
        drop(scorer);
        // The consumer may have bailed; dropping the result is fine.
        let _ = out.send((range.start, scores));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeneticSearch, SearchConfig};
    use gqa_funcs::NonLinearOp;

    #[test]
    fn pool_scores_match_serial() {
        let cfg = SearchConfig::for_op(NonLinearOp::Gelu)
            .with_generations(1)
            .with_population(40)
            .with_seed(3);
        let search = GeneticSearch::new(cfg);
        let scorer = Arc::clone(search.scorer_for_tests());
        let pop: Arc<Vec<Vec<f64>>> = Arc::new(
            (0..40)
                .map(|i| {
                    (0..7)
                        .map(|j| -3.5 + 0.9 * j as f64 + 0.01 * i as f64)
                        .collect()
                })
                .collect(),
        );
        let serial: Vec<f64> = pop.iter().map(|p| scorer.score(p)).collect();
        let pool = ScoringPool::spawn(4);
        let mut out = vec![0.0; pop.len()];
        pool.score_into(&scorer, &pop, 4, &mut out);
        assert_eq!(serial, out);
        // Reuse across "generations".
        let mut out2 = vec![0.0; pop.len()];
        pool.score_into(&scorer, &pop, 7, &mut out2);
        assert_eq!(serial, out2);
    }
}
