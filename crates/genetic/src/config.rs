//! Search hyper-parameters (Table 1) and builder.

use gqa_funcs::NonLinearOp;
use gqa_pwl::SegmentFit;

/// Which mutation operator `M(·)` Algorithm 1 uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MutationKind {
    /// Additive zero-mean Gaussian noise — the conventional operator, i.e.
    /// "GQA-LUT w/o RM". `std` is the noise standard deviation in input
    /// units.
    Gaussian {
        /// Standard deviation of the additive noise.
        std: f64,
    },
    /// Rounding Mutation (Algorithm 2) — "GQA-LUT w/ RM". Each breakpoint
    /// is, with per-step probability `θ_r`, snapped to `i` fractional bits
    /// for `i ∈ [m_a, m_b]`.
    Rounding,
}

/// How fitness (the selection criterion) is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitnessMode {
    /// Uniform grid over `[Rn, Rp]` with step 0.01 (Algorithm 1, line 6).
    /// This is the paper's fitness.
    PlainGrid,
    /// Extension (ablation): average dequantized-grid MSE over the paper's
    /// scale sweep `S ∈ {2^0 … 2^-6}`; directly optimizes the quantized
    /// objective instead of relying on RM. Slower.
    QuantAwareAverage,
}

/// Full configuration of a GQA-LUT search run.
///
/// Construct with [`SearchConfig::for_op`] for the paper's Table 1 values,
/// then refine with the `with_*` builders.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Target operator (provides `f(·)` and default range).
    pub op: NonLinearOp,
    /// Number of breakpoints `N_b` (entries − 1). Paper default: 7.
    pub num_breakpoints: usize,
    /// Population size `N_p`. Paper default: 50.
    pub population: usize,
    /// Crossover probability `θ_c`. Paper default: 0.7.
    pub crossover_prob: f64,
    /// Mutation probability `θ_m` (per individual per generation).
    /// Paper default: 0.2.
    pub mutation_prob: f64,
    /// RM per-step probability `θ_r` (Table 1; 0 disables RM steps).
    pub rounding_step_prob: f64,
    /// RM mutate range `[m_a, m_b]` (Table 1 footnote rows).
    pub mutate_range: (u32, u32),
    /// Search range `[Rn, Rp]`.
    pub range: (f64, f64),
    /// Number of generations `T`. Paper default: 500.
    pub generations: usize,
    /// Decimal (fractional) bit-width λ of slopes and intercepts.
    /// Paper default: 5.
    pub lambda: u32,
    /// Fitness grid step. Paper: 0.01.
    pub grid_step: f64,
    /// Mutation operator.
    pub mutation: MutationKind,
    /// Fitness mode.
    pub fitness: FitnessMode,
    /// Segment-parameter derivation.
    pub segment_fit: SegmentFit,
    /// RNG seed (searches are fully deterministic given the seed).
    pub seed: u64,
    /// Tournament size for selection. Paper: 3.
    pub tournament: usize,
    /// Whether fitness scores the λ-rounded pwl (quantization-aware
    /// fitness). On by default: with it off, the FXP conversion of slopes
    /// and intercepts adds a post-hoc error floor the evolution never saw.
    pub lambda_aware: bool,
    /// Whether the generation's best individual survives unchanged
    /// (elitism). Not spelled out in Algorithm 1; enabled by default as the
    /// standard stabilizer, ablatable via [`SearchConfig::with_elitism`].
    pub elitism: bool,
    /// Number of demes (islands) in the island-model search. `1` (the
    /// default) reproduces the single-population Algorithm 1 bit-exactly;
    /// larger values evolve independent populations with periodic elite
    /// migration. Each island draws from its own deterministic RNG stream,
    /// so results are reproducible for a fixed `(seed, islands)` pair.
    pub islands: usize,
    /// Generations between elite migrations in the island model (ring
    /// topology: island `i`'s best replaces one individual of island
    /// `i + 1 mod N`). Ignored when `islands == 1`.
    pub migration_interval: usize,
}

impl SearchConfig {
    /// Table 1 configuration for `op` with the 8-entry LUT
    /// (`N_b = 7`, `[m_a, m_b]_8`), RM enabled where the paper enables it.
    #[must_use]
    pub fn for_op(op: NonLinearOp) -> Self {
        let range = op.default_range();
        let (theta_r, mutate_range) = match op {
            NonLinearOp::Gelu | NonLinearOp::Hswish => (0.05, (0, 6)),
            NonLinearOp::Exp => (0.05, (2, 6)),
            // DIV / RSQRT: θr = 0 — RM degenerates to no-op; the paper runs
            // them as "w/o RM" (§4.1).
            NonLinearOp::Div | NonLinearOp::Rsqrt => (0.0, (0, 6)),
            _ => (0.05, (0, 6)),
        };
        Self {
            op,
            num_breakpoints: 7,
            population: 50,
            crossover_prob: 0.7,
            mutation_prob: 0.2,
            rounding_step_prob: theta_r,
            mutate_range,
            range,
            generations: 500,
            lambda: 5,
            grid_step: 0.01,
            mutation: MutationKind::Rounding,
            fitness: FitnessMode::PlainGrid,
            segment_fit: SegmentFit::LeastSquares,
            seed: 0xC0FFEE,
            tournament: 3,
            lambda_aware: true,
            elitism: true,
            islands: 1,
            migration_interval: 20,
        }
    }

    /// Switches to the 16-entry configuration: `N_b = 15` and the
    /// `[m_a, m_b]_16` row of Table 1.
    #[must_use]
    pub fn with_entries_16(mut self) -> Self {
        self.num_breakpoints = 15;
        self.mutate_range = match self.op {
            NonLinearOp::Gelu => (0, 6),
            NonLinearOp::Hswish => (2, 6),
            NonLinearOp::Exp => (0, 6),
            _ => self.mutate_range,
        };
        self
    }

    /// Uses Gaussian mutation instead of RM ("GQA-LUT w/o RM"); `std`
    /// defaults to 5 % of the range width via
    /// [`SearchConfig::gaussian_default_std`].
    #[must_use]
    pub fn without_rounding_mutation(mut self) -> Self {
        self.mutation = MutationKind::Gaussian {
            std: self.gaussian_default_std(),
        };
        self
    }

    /// Default Gaussian-mutation std: 5 % of the search-range width.
    #[must_use]
    pub fn gaussian_default_std(&self) -> f64 {
        0.05 * (self.range.1 - self.range.0)
    }

    /// Sets the number of generations `T`.
    #[must_use]
    pub fn with_generations(mut self, t: usize) -> Self {
        self.generations = t;
        self
    }

    /// Sets the population size `N_p`.
    #[must_use]
    pub fn with_population(mut self, np: usize) -> Self {
        self.population = np;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of breakpoints `N_b` directly.
    #[must_use]
    pub fn with_breakpoints(mut self, nb: usize) -> Self {
        self.num_breakpoints = nb;
        self
    }

    /// Sets the fitness mode.
    #[must_use]
    pub fn with_fitness(mut self, fitness: FitnessMode) -> Self {
        self.fitness = fitness;
        self
    }

    /// Sets the segment-fit method.
    #[must_use]
    pub fn with_segment_fit(mut self, fit: SegmentFit) -> Self {
        self.segment_fit = fit;
        self
    }

    /// Sets the tournament size.
    #[must_use]
    pub fn with_tournament(mut self, k: usize) -> Self {
        self.tournament = k;
        self
    }

    /// Enables or disables elitism.
    #[must_use]
    pub fn with_elitism(mut self, on: bool) -> Self {
        self.elitism = on;
        self
    }

    /// Enables or disables λ-aware (FXP-rounded) fitness.
    #[must_use]
    pub fn with_lambda_aware(mut self, on: bool) -> Self {
        self.lambda_aware = on;
        self
    }

    /// Sets the number of islands (demes). `1` reproduces the
    /// single-population search bit-exactly.
    ///
    /// Each island evolves on its own deterministic RNG stream (island 0
    /// uses the seed itself, so `islands = 1` is the PR-1 engine), with
    /// ring elite migration every
    /// [`with_migration_interval`](SearchConfig::with_migration_interval)
    /// generations.
    ///
    /// # Example
    ///
    /// ```
    /// use gqa_genetic::{GeneticSearch, SearchConfig};
    /// use gqa_funcs::NonLinearOp;
    ///
    /// // Small budget for the doctest; the paper uses T = 500.
    /// let cfg = SearchConfig::for_op(NonLinearOp::Gelu)
    ///     .with_generations(15)
    ///     .with_population(12)
    ///     .with_seed(7)
    ///     .with_islands(3)
    ///     .with_migration_interval(5);
    /// assert_eq!(cfg.islands, 3);
    /// let result = GeneticSearch::new(cfg).run();
    /// assert_eq!(result.pwl().num_entries(), 8);
    /// // Same seed + island count ⇒ bit-identical rerun.
    /// ```
    #[must_use]
    pub fn with_islands(mut self, islands: usize) -> Self {
        self.islands = islands;
        self
    }

    /// Sets the elite-migration interval (in generations).
    #[must_use]
    pub fn with_migration_interval(mut self, interval: usize) -> Self {
        self.migration_interval = interval;
        self
    }

    /// Number of LUT entries (`N_b + 1`).
    #[must_use]
    pub fn num_entries(&self) -> usize {
        self.num_breakpoints + 1
    }

    /// Number of fitness-grid points, the paper's "Data Size" row
    /// (0.8K for GELU, 0.35K for DIV, …). Delegates to
    /// [`gqa_funcs::grid_len`] so the reported size always matches the
    /// grid the evaluator actually builds (non-dyadic steps included).
    #[must_use]
    pub fn data_size(&self) -> usize {
        gqa_funcs::grid_len(self.range, self.grid_step)
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if any parameter is out of its
    /// documented domain. Called by [`crate::GeneticSearch::new`].
    pub fn validate(&self) {
        assert!(self.num_breakpoints >= 1, "need at least one breakpoint");
        assert!(self.population >= 2, "population must be at least 2");
        assert!(
            (0.0..=1.0).contains(&self.crossover_prob),
            "crossover probability must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.mutation_prob),
            "mutation probability must be in [0, 1]"
        );
        assert!(self.rounding_step_prob >= 0.0, "θr must be non-negative");
        assert!(
            self.mutate_range.0 <= self.mutate_range.1,
            "mutate range inverted"
        );
        let steps = (self.mutate_range.1 - self.mutate_range.0 + 1) as f64;
        assert!(
            steps * self.rounding_step_prob <= 1.0 + 1e-12,
            "RM total probability (m_b - m_a + 1)·θr = {} exceeds 1",
            steps * self.rounding_step_prob
        );
        assert!(self.range.0 < self.range.1, "empty search range");
        assert!(self.generations >= 1, "need at least one generation");
        assert!(self.grid_step > 0.0, "grid step must be positive");
        assert!(self.tournament >= 1, "tournament size must be at least 1");
        assert!(
            self.data_size() >= 2,
            "fitness grid too coarse for the range"
        );
        assert!(self.islands >= 1, "need at least one island");
        assert!(
            self.migration_interval >= 1,
            "migration interval must be at least 1 generation"
        );
    }

    /// Order-stable content hash of every field that affects the search
    /// outcome. Used by artifact registries to content-address compiled
    /// LUTs: two configs with equal fingerprints produce bit-identical
    /// results, and any change to a field (or to this encoding) changes
    /// the fingerprint and thus the cache identity.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a fixed field encoding; f64s enter as raw bits.
        let mut h = gqa_funcs::Fnv1a::new();
        h.eat_str(self.op.name());
        h.eat(self.num_breakpoints as u64);
        h.eat(self.population as u64);
        h.eat_f64(self.crossover_prob);
        h.eat_f64(self.mutation_prob);
        h.eat_f64(self.rounding_step_prob);
        h.eat(u64::from(self.mutate_range.0));
        h.eat(u64::from(self.mutate_range.1));
        h.eat_f64(self.range.0);
        h.eat_f64(self.range.1);
        h.eat(self.generations as u64);
        h.eat(u64::from(self.lambda));
        h.eat_f64(self.grid_step);
        match self.mutation {
            MutationKind::Gaussian { std } => {
                h.eat(1);
                h.eat_f64(std);
            }
            MutationKind::Rounding => h.eat(2),
        }
        h.eat(match self.fitness {
            FitnessMode::PlainGrid => 1,
            FitnessMode::QuantAwareAverage => 2,
        });
        h.eat(match self.segment_fit {
            SegmentFit::Interpolate => 1,
            SegmentFit::LeastSquares => 2,
        });
        h.eat(self.seed);
        h.eat(self.tournament as u64);
        h.eat(u64::from(self.lambda_aware));
        h.eat(u64::from(self.elitism));
        h.eat(self.islands as u64);
        h.eat(self.migration_interval as u64);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = SearchConfig::for_op(NonLinearOp::Gelu);
        assert_eq!(c.num_breakpoints, 7);
        assert_eq!(c.population, 50);
        assert_eq!(c.crossover_prob, 0.7);
        assert_eq!(c.mutation_prob, 0.2);
        assert_eq!(c.generations, 500);
        assert_eq!(c.lambda, 5);
        assert_eq!(c.range, (-4.0, 4.0));
        assert_eq!(c.rounding_step_prob, 0.05);
        assert_eq!(c.mutate_range, (0, 6));
        assert_eq!(c.tournament, 3);
    }

    #[test]
    fn table1_per_op_rows() {
        assert_eq!(SearchConfig::for_op(NonLinearOp::Exp).mutate_range, (2, 6));
        assert_eq!(SearchConfig::for_op(NonLinearOp::Exp).range, (-8.0, 0.0));
        assert_eq!(
            SearchConfig::for_op(NonLinearOp::Div).rounding_step_prob,
            0.0
        );
        assert_eq!(SearchConfig::for_op(NonLinearOp::Rsqrt).range, (0.25, 4.0));
    }

    #[test]
    fn table1_16_entry_rows() {
        let gelu = SearchConfig::for_op(NonLinearOp::Gelu).with_entries_16();
        assert_eq!(gelu.num_breakpoints, 15);
        assert_eq!(gelu.mutate_range, (0, 6));
        let hswish = SearchConfig::for_op(NonLinearOp::Hswish).with_entries_16();
        assert_eq!(hswish.mutate_range, (2, 6));
        let exp = SearchConfig::for_op(NonLinearOp::Exp).with_entries_16();
        assert_eq!(exp.mutate_range, (0, 6));
    }

    #[test]
    fn data_sizes_match_table1() {
        assert_eq!(SearchConfig::for_op(NonLinearOp::Gelu).data_size(), 800);
        assert_eq!(SearchConfig::for_op(NonLinearOp::Hswish).data_size(), 800);
        assert_eq!(SearchConfig::for_op(NonLinearOp::Exp).data_size(), 800);
        assert_eq!(SearchConfig::for_op(NonLinearOp::Div).data_size(), 350);
        assert_eq!(SearchConfig::for_op(NonLinearOp::Rsqrt).data_size(), 375);
    }

    #[test]
    fn builders_compose() {
        let c = SearchConfig::for_op(NonLinearOp::Gelu)
            .with_generations(10)
            .with_population(8)
            .with_seed(1)
            .with_tournament(2);
        assert_eq!(
            (c.generations, c.population, c.seed, c.tournament),
            (10, 8, 1, 2)
        );
    }

    #[test]
    fn without_rm_switches_to_gaussian() {
        let c = SearchConfig::for_op(NonLinearOp::Gelu).without_rounding_mutation();
        assert_eq!(c.mutation, MutationKind::Gaussian { std: 0.4 });
    }

    #[test]
    fn validate_accepts_paper_configs() {
        for &op in NonLinearOp::PAPER_OPS.iter() {
            SearchConfig::for_op(op).validate();
            SearchConfig::for_op(op).with_entries_16().validate();
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 1")]
    fn validate_rejects_oversized_rm_probability() {
        let mut c = SearchConfig::for_op(NonLinearOp::Gelu);
        c.rounding_step_prob = 0.2; // 7 steps × 0.2 = 1.4 > 1
        c.validate();
    }
}
