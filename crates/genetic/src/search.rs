//! Algorithm 1: the genetic piece-wise linear approximation search.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gqa_funcs::BatchEval;
use gqa_fxp::IntRange;
use gqa_pwl::{eval, Pwl, QuantAwareLut};

use crate::config::{FitnessMode, MutationKind, SearchConfig};
use crate::fitness::FitnessEvaluator;
use crate::mutation::{gaussian_mutation, rounding_mutation};
use crate::selection::tournament_select;

/// The genetic search engine (Algorithm 1).
///
/// Deterministic given the configured seed. See the crate docs for an
/// end-to-end example.
pub struct GeneticSearch {
    config: SearchConfig,
    evaluator: FitnessEvaluator,
    // Per-scale dequantized grids for QuantAwareAverage fitness, hoisted
    // out of the scoring loop: the codes and reference values depend only
    // on (scale, range, clip), never on the individual being scored.
    qaa_grids: Vec<DequantGrid>,
}

/// One precomputed §4.1 evaluation grid: the clip-surviving INT8 codes at
/// one scale plus the reference `f(q·S)` values.
struct DequantGrid {
    scale: gqa_fxp::PowerOfTwoScale,
    qs: Vec<i64>,
    ys: Vec<f64>,
}

impl std::fmt::Debug for GeneticSearch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeneticSearch")
            .field("config", &self.config)
            .field("evaluator", &self.evaluator)
            .finish()
    }
}

impl GeneticSearch {
    /// Builds a search for the configured operator's reference function.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SearchConfig::validate`].
    #[must_use]
    pub fn new(config: SearchConfig) -> Self {
        let op = config.op;
        Self::with_function(config, Arc::new(move |x| op.eval(x)))
    }

    /// Builds a search over a custom target function (the `op` field of the
    /// config is then only used for labeling). This is how downstream users
    /// approximate functions outside the paper's set.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SearchConfig::validate`].
    #[must_use]
    pub fn with_function(
        config: SearchConfig,
        function: Arc<dyn Fn(f64) -> f64 + Send + Sync>,
    ) -> Self {
        config.validate();
        let evaluator = FitnessEvaluator::new(
            Arc::clone(&function),
            config.range,
            config.grid_step,
            config.segment_fit,
        );
        let qaa_grids = if config.fitness == FitnessMode::QuantAwareAverage {
            let range = IntRange::signed(8);
            let (lo, hi) = config.range;
            eval::paper_scale_sweep()
                .into_iter()
                .map(|scale| {
                    let s = scale.to_f64();
                    let (qs, xs): (Vec<i64>, Vec<f64>) = range
                        .iter()
                        .map(|q| (q, q as f64 * s))
                        .filter(|&(_, x)| x >= lo && x <= hi)
                        .unzip();
                    let mut ys = vec![0.0; xs.len()];
                    gqa_funcs::FnEval(|x| function(x)).eval_batch(&xs, &mut ys);
                    DequantGrid { scale, qs, ys }
                })
                .collect()
        } else {
            Vec::new()
        };
        Self {
            config,
            evaluator,
            qaa_grids,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Runs the full T-generation evolution and returns the best LUT.
    #[must_use]
    pub fn run(self) -> SearchResult {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let (rn, rp) = cfg.range;

        // Line 1: random FP32 breakpoint population.
        let mut population: Vec<Vec<f64>> = (0..cfg.population)
            .map(|_| {
                let mut p: Vec<f64> = (0..cfg.num_breakpoints)
                    .map(|_| rng.gen_range(rn..rp))
                    .collect();
                p.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                p
            })
            .collect();

        let mut history = Vec::with_capacity(cfg.generations);

        // Lines 2–19: T-round evolution.
        for _gen in 0..cfg.generations {
            // Lines 9–16: stochastic crossover and mutation, in place.
            for i in 0..population.len() {
                let rand_c: f64 = rng.gen_range(0.0..1.0);
                let rand_m: f64 = rng.gen_range(0.0..1.0);
                if rand_c < cfg.crossover_prob && population.len() > 1 {
                    // Line 11: random partner j ≠ i.
                    let j = loop {
                        let j = rng.gen_range(0..population.len());
                        if j != i {
                            break j;
                        }
                    };
                    // Line 12: swap a random contiguous segment.
                    let nb = cfg.num_breakpoints;
                    let a = rng.gen_range(0..nb);
                    let b = rng.gen_range(a..nb) + 1;
                    // Split-borrow the two individuals.
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    let (left, right) = population.split_at_mut(hi);
                    let (pi, pj) = (&mut left[lo], &mut right[0]);
                    for t in a..b {
                        std::mem::swap(&mut pi[t], &mut pj[t]);
                    }
                    pi.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
                    pj.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
                }
                if rand_m < cfg.mutation_prob {
                    // Line 15: M(P_i, θ_r).
                    match cfg.mutation {
                        MutationKind::Gaussian { std } => {
                            gaussian_mutation(&mut population[i], std, cfg.range, &mut rng);
                        }
                        MutationKind::Rounding => {
                            rounding_mutation(
                                &mut population[i],
                                cfg.rounding_step_prob,
                                cfg.mutate_range,
                                &mut rng,
                            );
                        }
                    }
                }
            }

            // Lines 3–8 + 18: fitness, then 3-size tournament selection
            // onto the next generation (with optional elitism).
            let fitness_now: Vec<f64> = self.score_all(&population);
            let best_idx = fitness_now
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite fitness"))
                .map(|(i, _)| i)
                .expect("non-empty population");
            history.push(fitness_now[best_idx]);

            let mut next: Vec<Vec<f64>> = Vec::with_capacity(cfg.population);
            if cfg.elitism {
                next.push(population[best_idx].clone());
            }
            while next.len() < cfg.population {
                let w = tournament_select(&fitness_now, cfg.tournament, &mut rng);
                next.push(population[w].clone());
            }
            population = next;
        }

        // Line 20: best individual of the final generation.
        let (best_idx, _) = self
            .score_all(&population)
            .into_iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fitness"))
            .expect("non-empty population");
        let best_breakpoints = population[best_idx].clone();

        // Lines 21–22: derive K*, B* and round to FXP λ.
        let pwl = self.evaluator.derive_pwl(&best_breakpoints);
        let lut = QuantAwareLut::new(pwl, cfg.lambda).expect("valid pwl");
        let best_mse = self.evaluator.mse(lut.pwl());

        SearchResult {
            config: self.config.clone(),
            lut,
            best_breakpoints,
            best_mse,
            history,
        }
    }

    /// Scores the whole population, in order. With the `parallel` feature
    /// (default) large populations are sharded across scoped OS threads —
    /// the population-scoring parallelism the paper's per-generation loop
    /// admits trivially, since every individual's fitness is pure.
    ///
    /// Deterministic: scoring draws no randomness and results are written
    /// back by index, so the output is identical to the serial sweep.
    #[must_use]
    fn score_all(&self, population: &[Vec<f64>]) -> Vec<f64> {
        #[cfg(feature = "parallel")]
        {
            // Only shard when there is enough work to amortize thread
            // spawns (~tens of µs each): the default paper config
            // (N_p = 50 × 800-point grid) qualifies.
            let work = population.len() * self.evaluator.data_size();
            let avail = std::thread::available_parallelism().map_or(1, usize::from);
            let threads = avail.min(population.len() / 8).min(8);
            if threads > 1 && work >= 20_000 {
                let mut scores = vec![0.0f64; population.len()];
                let chunk = population.len().div_ceil(threads);
                std::thread::scope(|s| {
                    for (pop_chunk, out_chunk) in
                        population.chunks(chunk).zip(scores.chunks_mut(chunk))
                    {
                        s.spawn(move || {
                            for (p, out) in pop_chunk.iter().zip(out_chunk.iter_mut()) {
                                *out = self.score(p);
                            }
                        });
                    }
                });
                return scores;
            }
        }
        population.iter().map(|p| self.score(p)).collect()
    }

    /// Scores one individual per the configured fitness mode.
    fn score(&self, breakpoints: &[f64]) -> f64 {
        match self.config.fitness {
            FitnessMode::PlainGrid => {
                if self.config.lambda_aware {
                    self.evaluator
                        .fitness_fxp(breakpoints, self.config.lambda)
                        .1
                } else {
                    self.evaluator.fitness(breakpoints).1
                }
            }
            FitnessMode::QuantAwareAverage => {
                let pwl = self.evaluator.derive_pwl(breakpoints);
                let lut = match QuantAwareLut::new(pwl, self.config.lambda) {
                    Ok(l) => l,
                    Err(_) => return f64::INFINITY,
                };
                let range = IntRange::signed(8);
                // INT8 has at most 256 codes, so the output buffer lives
                // on the stack: scoring one individual allocates only the
                // per-scale LUT instantiation.
                let mut out = [0.0f64; 256];
                let total: f64 = self
                    .qaa_grids
                    .iter()
                    .map(|grid| {
                        if grid.qs.is_empty() {
                            // Every code clipped: defined as 0, matching
                            // eval::mse_dequantized_lut.
                            return 0.0;
                        }
                        let inst = lut.instantiate(grid.scale, range);
                        let out = &mut out[..grid.qs.len()];
                        inst.eval_dequantized_batch(&grid.qs, out);
                        let mut acc = 0.0f64;
                        for (&a, &r) in out.iter().zip(&grid.ys) {
                            let d = a - r;
                            acc += d * d;
                        }
                        acc / grid.qs.len() as f64
                    })
                    .sum();
                total / self.qaa_grids.len() as f64
            }
        }
    }
}

/// The outcome of a genetic search: the FXP LUT plus provenance.
#[derive(Debug, Clone)]
pub struct SearchResult {
    config: SearchConfig,
    lut: QuantAwareLut,
    best_breakpoints: Vec<f64>,
    best_mse: f64,
    history: Vec<f64>,
}

impl SearchResult {
    /// The quantization-aware LUT (FXP slopes/intercepts, FP breakpoints).
    #[must_use]
    pub fn lut(&self) -> &QuantAwareLut {
        &self.lut
    }

    /// The FXP-rounded pwl.
    #[must_use]
    pub fn pwl(&self) -> &Pwl {
        self.lut.pwl()
    }

    /// The winning breakpoint set `P*` (before FXP parameter rounding).
    #[must_use]
    pub fn breakpoints(&self) -> &[f64] {
        &self.best_breakpoints
    }

    /// Grid MSE of the final FXP-rounded pwl (Algorithm 1's objective,
    /// evaluated on the returned artifact).
    #[must_use]
    pub fn best_mse(&self) -> f64 {
        self.best_mse
    }

    /// Best plain-grid fitness per generation (monotone-ish descent trace).
    #[must_use]
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// The configuration that produced this result.
    #[must_use]
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_funcs::NonLinearOp;

    fn quick(op: NonLinearOp) -> SearchConfig {
        SearchConfig::for_op(op)
            .with_generations(60)
            .with_population(24)
            .with_seed(7)
    }

    #[test]
    fn deterministic_under_seed() {
        let a = GeneticSearch::new(quick(NonLinearOp::Gelu)).run();
        let b = GeneticSearch::new(quick(NonLinearOp::Gelu)).run();
        assert_eq!(a.breakpoints(), b.breakpoints());
        assert_eq!(a.best_mse(), b.best_mse());
        let c = GeneticSearch::new(quick(NonLinearOp::Gelu).with_seed(8)).run();
        assert_ne!(a.breakpoints(), c.breakpoints());
    }

    #[test]
    fn beats_uniform_breakpoints() {
        let cfg = quick(NonLinearOp::Gelu)
            .with_generations(200)
            .with_population(50);
        let ev = FitnessEvaluator::new(
            Arc::new(|x| NonLinearOp::Gelu.eval(x)),
            cfg.range,
            cfg.grid_step,
            cfg.segment_fit,
        );
        let uniform: Vec<f64> = (1..=7).map(|i| -4.0 + i as f64).collect();
        let (_, uniform_mse) = ev.fitness(&uniform);
        let result = GeneticSearch::new(cfg).run();
        // Compare pre-FXP fitness with pre-FXP fitness (the FXP-rounded
        // artifact carries an additional λ-grid noise floor that the
        // dequantized-grid evaluation of §4.1, not this plain grid, washes
        // out in the tails).
        let (_, ga_mse) = ev.fitness(result.breakpoints());
        assert!(
            ga_mse < uniform_mse,
            "GA {ga_mse} should beat uniform {uniform_mse}"
        );
    }

    #[test]
    fn history_has_one_entry_per_generation() {
        let r = GeneticSearch::new(quick(NonLinearOp::Exp)).run();
        assert_eq!(r.history().len(), 60);
        // Fitness generally improves from start to end.
        assert!(r.history().last().unwrap() <= r.history().first().unwrap());
    }

    #[test]
    fn breakpoints_stay_in_range() {
        for &op in NonLinearOp::PAPER_OPS.iter() {
            let r = GeneticSearch::new(quick(op)).run();
            let (rn, rp) = r.config().range;
            for &p in r.pwl().breakpoints() {
                assert!((rn..=rp).contains(&p), "{op}: {p} outside [{rn}, {rp}]");
            }
        }
    }

    #[test]
    fn sixteen_entry_beats_eight_entry() {
        let r8 = GeneticSearch::new(quick(NonLinearOp::Gelu)).run();
        let r16 = GeneticSearch::new(quick(NonLinearOp::Gelu).with_entries_16()).run();
        assert_eq!(r16.pwl().num_entries(), 16);
        assert!(r16.best_mse() <= r8.best_mse() * 1.2);
    }

    #[test]
    fn rm_breakpoints_tend_to_fxp_grid() {
        // With RM, most winning breakpoints should sit on coarse
        // power-of-two fractions.
        let r = GeneticSearch::new(quick(NonLinearOp::Gelu).with_generations(120)).run();
        let on_grid = r
            .breakpoints()
            .iter()
            .filter(|&&p| {
                let s = p * 64.0; // 6 fractional bits, the finest RM grid
                (s - s.round()).abs() < 1e-9
            })
            .count();
        assert!(
            on_grid >= r.breakpoints().len() / 2,
            "only {on_grid}/{} on the RM grid",
            r.breakpoints().len()
        );
    }

    #[test]
    fn custom_function_search() {
        let cfg = quick(NonLinearOp::Sigmoid); // label only
        let r = GeneticSearch::with_function(cfg, Arc::new(|x: f64| x.abs())).run();
        // |x| is exactly representable with a breakpoint near 0.
        assert!(r.best_mse() < 1e-3, "mse = {}", r.best_mse());
    }

    #[test]
    fn quant_aware_fitness_runs() {
        let cfg = quick(NonLinearOp::Gelu)
            .with_generations(15)
            .with_fitness(FitnessMode::QuantAwareAverage);
        let r = GeneticSearch::new(cfg).run();
        assert!(r.best_mse().is_finite());
    }
}
