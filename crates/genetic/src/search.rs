//! Algorithm 1: the genetic piece-wise linear approximation search, run as
//! a multi-deme island model.
//!
//! The search is organized as `islands` independent populations (demes),
//! each with its own deterministic RNG stream derived from the config
//! seed. Every [`SearchConfig::migration_interval`] generations the best
//! individual of island `i` migrates into island `i + 1 mod N` (ring
//! topology), which keeps demes loosely coupled while letting good
//! breakpoint sets spread. With `islands = 1` (the default) the whole
//! machinery degenerates to the paper's single-population Algorithm 1 and
//! is **bit-exact** with it: island 0's RNG stream *is* the config seed.
//!
//! Population scoring is offloaded to a persistent worker pool (under the
//! `parallel` feature) that is spawned once per run and amortized across
//! all generations and islands, replacing the per-generation thread
//! spawning of earlier revisions.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gqa_funcs::BatchEval;
use gqa_fxp::IntRange;
use gqa_pwl::{eval, Pwl, QuantAwareLut};

use crate::config::{FitnessMode, MutationKind, SearchConfig};
use crate::fitness::FitnessEvaluator;
use crate::mutation::{gaussian_mutation, rounding_mutation};
use crate::selection::tournament_select;

#[cfg(feature = "parallel")]
use crate::pool::ScoringPool;

/// The genetic search engine (Algorithm 1, island-model generalization).
///
/// Deterministic given the configured `(seed, islands)`. See the crate
/// docs for an end-to-end example.
pub struct GeneticSearch {
    config: SearchConfig,
    scorer: Arc<Scorer>,
}

/// The pure fitness context shared by every worker: evaluator, fitness
/// mode, and the precomputed §4.1 grids. Immutable after construction, so
/// it can be handed to scoring workers as an `Arc`.
pub(crate) struct Scorer {
    fitness: FitnessMode,
    lambda: u32,
    lambda_aware: bool,
    evaluator: FitnessEvaluator,
    // Per-scale dequantized grids for QuantAwareAverage fitness, hoisted
    // out of the scoring loop: the codes and reference values depend only
    // on (scale, range, clip), never on the individual being scored.
    qaa_grids: Vec<DequantGrid>,
}

/// One precomputed §4.1 evaluation grid: the clip-surviving INT8 codes at
/// one scale plus the reference `f(q·S)` values.
struct DequantGrid {
    scale: gqa_fxp::PowerOfTwoScale,
    qs: Vec<i64>,
    ys: Vec<f64>,
}

impl Scorer {
    /// Scores one individual per the configured fitness mode.
    pub(crate) fn score(&self, breakpoints: &[f64]) -> f64 {
        match self.fitness {
            FitnessMode::PlainGrid => {
                if self.lambda_aware {
                    self.evaluator.fitness_fxp(breakpoints, self.lambda).1
                } else {
                    self.evaluator.fitness(breakpoints).1
                }
            }
            FitnessMode::QuantAwareAverage => {
                let pwl = self.evaluator.derive_pwl(breakpoints);
                let lut = match QuantAwareLut::new(pwl, self.lambda) {
                    Ok(l) => l,
                    Err(_) => return f64::INFINITY,
                };
                let range = IntRange::signed(8);
                // INT8 has at most 256 codes, so the output buffer lives
                // on the stack: scoring one individual allocates only the
                // per-scale LUT instantiation.
                let mut out = [0.0f64; 256];
                let total: f64 = self
                    .qaa_grids
                    .iter()
                    .map(|grid| {
                        if grid.qs.is_empty() {
                            // Every code clipped: defined as 0, matching
                            // eval::mse_dequantized_lut.
                            return 0.0;
                        }
                        let inst = lut.instantiate(grid.scale, range);
                        let out = &mut out[..grid.qs.len()];
                        inst.eval_dequantized_batch(&grid.qs, out);
                        let mut acc = 0.0f64;
                        for (&a, &r) in out.iter().zip(&grid.ys) {
                            let d = a - r;
                            acc += d * d;
                        }
                        acc / grid.qs.len() as f64
                    })
                    .sum();
                total / self.qaa_grids.len() as f64
            }
        }
    }

    /// Grid size of the underlying evaluator (work-size heuristic input;
    /// consulted by the parallel scoring pool only).
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    pub(crate) fn data_size(&self) -> usize {
        self.evaluator.data_size()
    }
}

impl std::fmt::Debug for GeneticSearch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeneticSearch")
            .field("config", &self.config)
            .field("evaluator", &self.scorer.evaluator)
            .finish()
    }
}

/// The deterministic per-island RNG stream: island 0 *is* the config seed
/// (single-island runs are bit-exact with the pre-island engine); higher
/// islands get decorrelated streams through a splitmix64 finalizer.
fn island_seed(seed: u64, island: usize) -> u64 {
    if island == 0 {
        return seed;
    }
    let mut z = seed ^ (island as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl GeneticSearch {
    /// Builds a search for the configured operator's reference function.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SearchConfig::validate`].
    #[must_use]
    pub fn new(config: SearchConfig) -> Self {
        let op = config.op;
        Self::with_function(config, Arc::new(move |x| op.eval(x)))
    }

    /// Builds a search over a custom target function (the `op` field of the
    /// config is then only used for labeling). This is how downstream users
    /// approximate functions outside the paper's set.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SearchConfig::validate`].
    #[must_use]
    pub fn with_function(
        config: SearchConfig,
        function: Arc<dyn Fn(f64) -> f64 + Send + Sync>,
    ) -> Self {
        config.validate();
        let evaluator = FitnessEvaluator::new(
            Arc::clone(&function),
            config.range,
            config.grid_step,
            config.segment_fit,
        );
        let qaa_grids = if config.fitness == FitnessMode::QuantAwareAverage {
            let range = IntRange::signed(8);
            let (lo, hi) = config.range;
            eval::paper_scale_sweep()
                .into_iter()
                .map(|scale| {
                    let s = scale.to_f64();
                    let (qs, xs): (Vec<i64>, Vec<f64>) = range
                        .iter()
                        .map(|q| (q, q as f64 * s))
                        .filter(|&(_, x)| x >= lo && x <= hi)
                        .unzip();
                    let mut ys = vec![0.0; xs.len()];
                    gqa_funcs::FnEval(|x| function(x)).eval_batch(&xs, &mut ys);
                    DequantGrid { scale, qs, ys }
                })
                .collect()
        } else {
            Vec::new()
        };
        let scorer = Arc::new(Scorer {
            fitness: config.fitness,
            lambda: config.lambda,
            lambda_aware: config.lambda_aware,
            evaluator,
            qaa_grids,
        });
        Self { config, scorer }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Test-only access to the shared scorer (used by the pool tests, so
    /// it is dead code in a serial test build).
    #[cfg(test)]
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    pub(crate) fn scorer_for_tests(&self) -> &Arc<Scorer> {
        &self.scorer
    }

    /// Converts the search into a resumable run: populations initialized,
    /// zero generations executed. Drive it with [`IslandRun::step`] (one
    /// generation across all islands) and close with [`IslandRun::finish`].
    #[must_use]
    pub fn into_run(self) -> IslandRun {
        IslandRun::new(self.config, self.scorer)
    }

    /// Runs the full T-generation evolution and returns the best LUT.
    #[must_use]
    pub fn run(self) -> SearchResult {
        let mut run = self.into_run();
        while !run.is_done() {
            run.step();
        }
        run.finish()
    }
}

/// One deme: an independent population with its own RNG stream.
struct Island {
    population: Vec<Vec<f64>>,
    rng: StdRng,
    /// Best individual of the most recently scored generation (used for
    /// migration; refreshed every [`IslandRun::step`]).
    best: Vec<f64>,
    best_fitness: f64,
}

/// A resumable island-model evolution: populations, per-island RNG
/// streams, and the persistent scoring pool live here between generations.
///
/// Obtained from [`GeneticSearch::into_run`]; callers that do not need
/// generation-level control use [`GeneticSearch::run`].
pub struct IslandRun {
    config: SearchConfig,
    scorer: Arc<Scorer>,
    islands: Vec<Island>,
    generation: usize,
    history: Vec<f64>,
    #[cfg(feature = "parallel")]
    pool: Option<ScoringPool>,
    /// Scratch buffer reused across generations for fitness values.
    scores: Vec<f64>,
}

impl std::fmt::Debug for IslandRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IslandRun")
            .field("islands", &self.islands.len())
            .field("generation", &self.generation)
            .field("of", &self.config.generations)
            .finish()
    }
}

impl IslandRun {
    fn new(config: SearchConfig, scorer: Arc<Scorer>) -> Self {
        let (rn, rp) = config.range;
        let islands = (0..config.islands)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(island_seed(config.seed, i));
                // Line 1: random FP32 breakpoint population.
                let population: Vec<Vec<f64>> = (0..config.population)
                    .map(|_| {
                        let mut p: Vec<f64> = (0..config.num_breakpoints)
                            .map(|_| rng.gen_range(rn..rp))
                            .collect();
                        p.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                        p
                    })
                    .collect();
                Island {
                    population,
                    rng,
                    best: Vec::new(),
                    best_fitness: f64::INFINITY,
                }
            })
            .collect();
        let history = Vec::with_capacity(config.generations);
        Self {
            config,
            scorer,
            islands,
            generation: 0,
            history,
            #[cfg(feature = "parallel")]
            pool: None,
            scores: Vec::new(),
        }
    }

    /// Generations executed so far.
    #[must_use]
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Whether the configured generation budget is exhausted.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.generation >= self.config.generations
    }

    /// Best plain-grid fitness per executed generation (global best across
    /// islands; monotone-ish descent trace).
    #[must_use]
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Best fitness seen in the most recent generation, if any.
    #[must_use]
    pub fn best_fitness(&self) -> Option<f64> {
        self.history.last().copied()
    }

    /// Executes one generation on every island (lines 2–19 of Algorithm 1
    /// per deme), then ring-migrates elites when the interval elapses.
    /// Returns the generation's global best fitness.
    pub fn step(&mut self) -> f64 {
        let cfg = self.config.clone();
        let mut generation_best = f64::INFINITY;

        for idx in 0..self.islands.len() {
            // Lines 9–16: stochastic crossover and mutation, in place.
            {
                let island = &mut self.islands[idx];
                let population = &mut island.population;
                let rng = &mut island.rng;
                for i in 0..population.len() {
                    let rand_c: f64 = rng.gen_range(0.0..1.0);
                    let rand_m: f64 = rng.gen_range(0.0..1.0);
                    if rand_c < cfg.crossover_prob && population.len() > 1 {
                        // Line 11: random partner j ≠ i.
                        let j = loop {
                            let j = rng.gen_range(0..population.len());
                            if j != i {
                                break j;
                            }
                        };
                        // Line 12: swap a random contiguous segment.
                        let nb = cfg.num_breakpoints;
                        let a = rng.gen_range(0..nb);
                        let b = rng.gen_range(a..nb) + 1;
                        // Split-borrow the two individuals.
                        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                        let (left, right) = population.split_at_mut(hi);
                        let (pi, pj) = (&mut left[lo], &mut right[0]);
                        for t in a..b {
                            std::mem::swap(&mut pi[t], &mut pj[t]);
                        }
                        pi.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
                        pj.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
                    }
                    if rand_m < cfg.mutation_prob {
                        // Line 15: M(P_i, θ_r).
                        match cfg.mutation {
                            MutationKind::Gaussian { std } => {
                                gaussian_mutation(&mut population[i], std, cfg.range, rng);
                            }
                            MutationKind::Rounding => {
                                rounding_mutation(
                                    &mut population[i],
                                    cfg.rounding_step_prob,
                                    cfg.mutate_range,
                                    rng,
                                );
                            }
                        }
                    }
                }
            }

            // Lines 3–8 + 18: fitness, then 3-size tournament selection
            // onto the next generation (with optional elitism).
            self.score_island(idx);
            let island = &mut self.islands[idx];
            let fitness_now = &self.scores;
            let best_idx = fitness_now
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite fitness"))
                .map(|(i, _)| i)
                .expect("non-empty population");
            island.best = island.population[best_idx].clone();
            island.best_fitness = fitness_now[best_idx];
            generation_best = generation_best.min(island.best_fitness);

            let mut next: Vec<Vec<f64>> = Vec::with_capacity(cfg.population);
            if cfg.elitism {
                next.push(island.population[best_idx].clone());
            }
            while next.len() < cfg.population {
                let w = tournament_select(fitness_now, cfg.tournament, &mut island.rng);
                next.push(island.population[w].clone());
            }
            island.population = next;
        }

        self.history.push(generation_best);
        self.generation += 1;

        // Elite migration on the ring (deterministic, draws no RNG): the
        // immigrant replaces the last tournament-selected slot, never the
        // elitism slot at index 0.
        if self.islands.len() > 1
            && self
                .generation
                .is_multiple_of(self.config.migration_interval)
        {
            let migrants: Vec<Vec<f64>> = self.islands.iter().map(|is| is.best.clone()).collect();
            let n = self.islands.len();
            for (i, migrant) in migrants.into_iter().enumerate() {
                let dest = &mut self.islands[(i + 1) % n];
                let last = dest.population.len() - 1;
                dest.population[last] = migrant;
            }
        }

        generation_best
    }

    /// Scores island `idx`'s population into `self.scores` (ordered by
    /// individual index). With the `parallel` feature and enough work the
    /// persistent pool shards the population across workers; results are
    /// written back by index, so the output is identical to the serial
    /// sweep.
    fn score_island(&mut self, idx: usize) {
        let n = self.islands[idx].population.len();
        self.scores.clear();
        self.scores.resize(n, 0.0);

        #[cfg(feature = "parallel")]
        {
            // Only shard when there is enough work to amortize the channel
            // round-trip: the default paper config (N_p = 50 × 800-point
            // grid) qualifies.
            let work = n * self.scorer.data_size();
            let avail = std::thread::available_parallelism().map_or(1, usize::from);
            let threads = avail.min(n / 8).min(8);
            if threads > 1 && work >= 20_000 {
                let pool = self
                    .pool
                    .get_or_insert_with(|| ScoringPool::spawn(avail.min(8)));
                // Hand the population to the workers as shared ownership,
                // then take it back (the pool drops its clones once every
                // chunk is scored).
                let shared = Arc::new(std::mem::take(&mut self.islands[idx].population));
                pool.score_into(&self.scorer, &shared, threads, &mut self.scores);
                self.islands[idx].population =
                    Arc::try_unwrap(shared).unwrap_or_else(|arc| (*arc).clone());
                return;
            }
        }

        for (out, p) in self.scores.iter_mut().zip(&self.islands[idx].population) {
            *out = self.scorer.score(p);
        }
    }

    /// Line 20: scores the final populations and returns the global best
    /// individual as the finished FXP artifact.
    #[must_use]
    pub fn finish(mut self) -> SearchResult {
        let mut best: Option<(f64, Vec<f64>)> = None;
        for idx in 0..self.islands.len() {
            self.score_island(idx);
            let (best_idx, fit) = self
                .scores
                .iter()
                .copied()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fitness"))
                .expect("non-empty population");
            let better = match &best {
                Some((f, _)) => fit < *f,
                None => true,
            };
            if better {
                best = Some((fit, self.islands[idx].population[best_idx].clone()));
            }
        }
        let (_, best_breakpoints) = best.expect("at least one island");

        // Lines 21–22: derive K*, B* and round to FXP λ.
        let pwl = self.scorer.evaluator.derive_pwl(&best_breakpoints);
        let lut = QuantAwareLut::new(pwl, self.config.lambda).expect("valid pwl");
        let best_mse = self.scorer.evaluator.mse(lut.pwl());

        SearchResult {
            config: self.config,
            lut,
            best_breakpoints,
            best_mse,
            history: self.history,
        }
    }
}

/// The outcome of a genetic search: the FXP LUT plus provenance.
#[derive(Debug, Clone)]
pub struct SearchResult {
    config: SearchConfig,
    lut: QuantAwareLut,
    best_breakpoints: Vec<f64>,
    best_mse: f64,
    history: Vec<f64>,
}

impl SearchResult {
    /// The quantization-aware LUT (FXP slopes/intercepts, FP breakpoints).
    #[must_use]
    pub fn lut(&self) -> &QuantAwareLut {
        &self.lut
    }

    /// The FXP-rounded pwl.
    #[must_use]
    pub fn pwl(&self) -> &Pwl {
        self.lut.pwl()
    }

    /// The winning breakpoint set `P*` (before FXP parameter rounding).
    #[must_use]
    pub fn breakpoints(&self) -> &[f64] {
        &self.best_breakpoints
    }

    /// Grid MSE of the final FXP-rounded pwl (Algorithm 1's objective,
    /// evaluated on the returned artifact).
    #[must_use]
    pub fn best_mse(&self) -> f64 {
        self.best_mse
    }

    /// Best plain-grid fitness per generation (monotone-ish descent trace).
    #[must_use]
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// The configuration that produced this result.
    #[must_use]
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_funcs::NonLinearOp;

    fn quick(op: NonLinearOp) -> SearchConfig {
        SearchConfig::for_op(op)
            .with_generations(60)
            .with_population(24)
            .with_seed(7)
    }

    #[test]
    fn deterministic_under_seed() {
        let a = GeneticSearch::new(quick(NonLinearOp::Gelu)).run();
        let b = GeneticSearch::new(quick(NonLinearOp::Gelu)).run();
        assert_eq!(a.breakpoints(), b.breakpoints());
        assert_eq!(a.best_mse(), b.best_mse());
        let c = GeneticSearch::new(quick(NonLinearOp::Gelu).with_seed(8)).run();
        assert_ne!(a.breakpoints(), c.breakpoints());
    }

    #[test]
    fn beats_uniform_breakpoints() {
        let cfg = quick(NonLinearOp::Gelu)
            .with_generations(200)
            .with_population(50);
        let ev = FitnessEvaluator::new(
            Arc::new(|x| NonLinearOp::Gelu.eval(x)),
            cfg.range,
            cfg.grid_step,
            cfg.segment_fit,
        );
        let uniform: Vec<f64> = (1..=7).map(|i| -4.0 + i as f64).collect();
        let (_, uniform_mse) = ev.fitness(&uniform);
        let result = GeneticSearch::new(cfg).run();
        // Compare pre-FXP fitness with pre-FXP fitness (the FXP-rounded
        // artifact carries an additional λ-grid noise floor that the
        // dequantized-grid evaluation of §4.1, not this plain grid, washes
        // out in the tails).
        let (_, ga_mse) = ev.fitness(result.breakpoints());
        assert!(
            ga_mse < uniform_mse,
            "GA {ga_mse} should beat uniform {uniform_mse}"
        );
    }

    #[test]
    fn history_has_one_entry_per_generation() {
        let r = GeneticSearch::new(quick(NonLinearOp::Exp)).run();
        assert_eq!(r.history().len(), 60);
        // Fitness generally improves from start to end.
        assert!(r.history().last().unwrap() <= r.history().first().unwrap());
    }

    #[test]
    fn breakpoints_stay_in_range() {
        for &op in NonLinearOp::PAPER_OPS.iter() {
            let r = GeneticSearch::new(quick(op)).run();
            let (rn, rp) = r.config().range;
            for &p in r.pwl().breakpoints() {
                assert!((rn..=rp).contains(&p), "{op}: {p} outside [{rn}, {rp}]");
            }
        }
    }

    #[test]
    fn sixteen_entry_beats_eight_entry() {
        let r8 = GeneticSearch::new(quick(NonLinearOp::Gelu)).run();
        let r16 = GeneticSearch::new(quick(NonLinearOp::Gelu).with_entries_16()).run();
        assert_eq!(r16.pwl().num_entries(), 16);
        assert!(r16.best_mse() <= r8.best_mse() * 1.2);
    }

    #[test]
    fn rm_breakpoints_tend_to_fxp_grid() {
        // With RM, most winning breakpoints should sit on coarse
        // power-of-two fractions.
        let r = GeneticSearch::new(quick(NonLinearOp::Gelu).with_generations(120)).run();
        let on_grid = r
            .breakpoints()
            .iter()
            .filter(|&&p| {
                let s = p * 64.0; // 6 fractional bits, the finest RM grid
                (s - s.round()).abs() < 1e-9
            })
            .count();
        assert!(
            on_grid >= r.breakpoints().len() / 2,
            "only {on_grid}/{} on the RM grid",
            r.breakpoints().len()
        );
    }

    #[test]
    fn custom_function_search() {
        let cfg = quick(NonLinearOp::Sigmoid); // label only
        let r = GeneticSearch::with_function(cfg, Arc::new(|x: f64| x.abs())).run();
        // |x| is exactly representable with a breakpoint near 0.
        assert!(r.best_mse() < 1e-3, "mse = {}", r.best_mse());
    }

    #[test]
    fn quant_aware_fitness_runs() {
        let cfg = quick(NonLinearOp::Gelu)
            .with_generations(15)
            .with_fitness(FitnessMode::QuantAwareAverage);
        let r = GeneticSearch::new(cfg).run();
        assert!(r.best_mse().is_finite());
    }

    #[test]
    fn stepwise_run_matches_one_shot() {
        let one_shot = GeneticSearch::new(quick(NonLinearOp::Gelu)).run();
        let mut run = GeneticSearch::new(quick(NonLinearOp::Gelu)).into_run();
        let mut steps = 0;
        while !run.is_done() {
            run.step();
            steps += 1;
        }
        assert_eq!(steps, 60);
        let resumed = run.finish();
        assert_eq!(one_shot.breakpoints(), resumed.breakpoints());
        assert_eq!(one_shot.best_mse(), resumed.best_mse());
        assert_eq!(one_shot.history(), resumed.history());
    }

    #[test]
    fn island_streams_are_decorrelated() {
        assert_eq!(island_seed(42, 0), 42);
        assert_ne!(island_seed(42, 1), island_seed(42, 2));
        assert_ne!(island_seed(42, 1), island_seed(43, 1));
    }

    #[test]
    fn multi_island_runs_and_is_deterministic() {
        let cfg = || {
            quick(NonLinearOp::Gelu)
                .with_generations(40)
                .with_islands(3)
                .with_migration_interval(10)
        };
        let a = GeneticSearch::new(cfg()).run();
        let b = GeneticSearch::new(cfg()).run();
        assert_eq!(a.breakpoints(), b.breakpoints());
        assert_eq!(a.best_mse().to_bits(), b.best_mse().to_bits());
        assert_eq!(a.history(), b.history());
    }

    #[test]
    fn more_islands_never_hurt_much() {
        // The global best over 3 islands is at least as good as the worst
        // single run would suggest; mainly this guards the plumbing (the
        // best individual must actually be selected across demes).
        let single = GeneticSearch::new(quick(NonLinearOp::Gelu)).run();
        let multi = GeneticSearch::new(quick(NonLinearOp::Gelu).with_islands(3)).run();
        assert!(multi.best_mse() <= single.best_mse() * 2.0);
    }
}
