//! Island-model regression tests: single-island runs must stay bit-exact
//! with the pre-island engine (golden values captured from that code), and
//! multi-island runs must be deterministic under `(seed, islands)`.

use gqa_funcs::NonLinearOp;
use gqa_genetic::{GeneticSearch, SearchConfig};

/// Golden `best_mse` bit patterns captured from the single-population
/// engine (PR 1) for three fixed configs. `islands = 1` (the default) must
/// reproduce them exactly — the island refactor is required to be a
/// behavioral no-op for single-deme runs.
const GOLDENS: [(NonLinearOp, usize, usize, u64, u64); 3] = [
    (NonLinearOp::Gelu, 60, 24, 7, 0x3f20_7dd9_a754_af1b),
    (NonLinearOp::Exp, 40, 16, 11, 0x3f30_16a9_5891_3196),
    (NonLinearOp::Div, 50, 20, 3, 0x3f29_64f7_8c88_dd46),
];

#[test]
fn single_island_is_bit_exact_with_pre_island_engine() {
    for (op, gens, pop, seed, mse_bits) in GOLDENS {
        let cfg = SearchConfig::for_op(op)
            .with_generations(gens)
            .with_population(pop)
            .with_seed(seed);
        assert_eq!(cfg.islands, 1, "default must stay single-island");
        let r = GeneticSearch::new(cfg).run();
        assert_eq!(
            r.best_mse().to_bits(),
            mse_bits,
            "{op}: best MSE {:e} (bits 0x{:016x}) diverged from the \
             pre-island golden 0x{mse_bits:016x}",
            r.best_mse(),
            r.best_mse().to_bits(),
        );
    }
}

#[test]
fn golden_config_breakpoints_stable() {
    // Full breakpoint vector of the Gelu golden, bit-for-bit.
    let want: [u64; 7] = [
        0xc008_0000_0000_0000,
        0xbff8_0000_0000_0000,
        0xbfe4_0000_0000_0000,
        0x0000_0000_0000_0000,
        0x3fee_0000_0000_0000,
        0x4000_0000_0000_0000,
        0x400c_0000_0000_0000,
    ];
    let r = GeneticSearch::new(
        SearchConfig::for_op(NonLinearOp::Gelu)
            .with_generations(60)
            .with_population(24)
            .with_seed(7),
    )
    .run();
    let got: Vec<u64> = r.breakpoints().iter().map(|b| b.to_bits()).collect();
    assert_eq!(got, want);
}

#[test]
fn fixed_seed_and_island_count_reproduce_exactly() {
    for islands in [2, 4] {
        let cfg = || {
            SearchConfig::for_op(NonLinearOp::Hswish)
                .with_generations(30)
                .with_population(16)
                .with_seed(99)
                .with_islands(islands)
                .with_migration_interval(8)
        };
        let a = GeneticSearch::new(cfg()).run();
        let b = GeneticSearch::new(cfg()).run();
        assert_eq!(
            a.best_mse().to_bits(),
            b.best_mse().to_bits(),
            "islands={islands}: two runs disagree"
        );
        assert_eq!(a.breakpoints(), b.breakpoints());
        assert_eq!(a.history(), b.history());
    }
}

#[test]
fn island_count_changes_the_trajectory() {
    let base = SearchConfig::for_op(NonLinearOp::Gelu)
        .with_generations(30)
        .with_population(16)
        .with_seed(5)
        // No migration inside this horizon: island 0 then evolves exactly
        // like the single-island run, making the min-merge property exact.
        .with_migration_interval(1000);
    let one = GeneticSearch::new(base.clone()).run();
    let three = GeneticSearch::new(base.with_islands(3)).run();
    // Island 0 evolves identically, but the global best may come from any
    // deme, so histories (global best per generation) are min-merged: the
    // 3-island trace must never be worse, generation for generation.
    for (h1, h3) in one.history().iter().zip(three.history()) {
        assert!(h3 <= h1, "3-island history worse than single: {h3} > {h1}");
    }
}

#[test]
fn resumable_run_reports_progress() {
    let cfg = SearchConfig::for_op(NonLinearOp::Exp)
        .with_generations(12)
        .with_population(12)
        .with_seed(1)
        .with_islands(2);
    let mut run = GeneticSearch::new(cfg).into_run();
    assert_eq!(run.generation(), 0);
    assert!(run.best_fitness().is_none());
    let first = run.step();
    assert_eq!(run.generation(), 1);
    assert_eq!(run.best_fitness(), Some(first));
    while !run.is_done() {
        run.step();
    }
    assert_eq!(run.generation(), 12);
    assert_eq!(run.history().len(), 12);
    let r = run.finish();
    assert!(r.best_mse().is_finite());
    assert_eq!(r.history().len(), 12);
}

#[test]
fn config_fingerprint_tracks_island_fields() {
    let base = SearchConfig::for_op(NonLinearOp::Gelu);
    let fp = base.fingerprint();
    assert_eq!(fp, base.clone().fingerprint(), "fingerprint is pure");
    assert_ne!(fp, base.clone().with_islands(2).fingerprint());
    assert_ne!(fp, base.clone().with_migration_interval(5).fingerprint());
    assert_ne!(fp, base.clone().with_seed(1).fingerprint());
    assert_ne!(
        fp,
        SearchConfig::for_op(NonLinearOp::Hswish).fingerprint(),
        "operator must enter the fingerprint"
    );
}
