//! Property-based tests for the genetic search machinery.

use gqa_fxp::round_to_fraction_bits;
use gqa_genetic::mutation::{gaussian_mutation, rounding_mutation};
use gqa_genetic::{tournament_select, FitnessEvaluator};
use gqa_pwl::SegmentFit;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn sorted(v: &[f64]) -> bool {
    v.windows(2).all(|w| w[0] <= w[1])
}

proptest! {
    /// RM output is always sorted, and every changed element sits on one of
    /// the [m_a, m_b] fractional-bit grids.
    #[test]
    fn rm_invariants(mut bps in proptest::collection::vec(-4.0f64..4.0, 1..12),
                     seed in 0u64..1000, ma in 0u32..4, span in 0u32..4) {
        let mb = ma + span;
        let orig = bps.clone();
        let theta_r = (1.0 / f64::from(mb - ma + 1)).min(0.2);
        let mut rng = StdRng::seed_from_u64(seed);
        rounding_mutation(&mut bps, theta_r, (ma, mb), &mut rng);
        prop_assert!(sorted(&bps));
        // Each element is either one of the originals (possibly permuted by
        // the sort) or on some grid in [ma, mb]. Since grids are nested, a
        // changed value is always on the finest (mb) grid.
        for &p in &bps {
            let unchanged = orig.iter().any(|&o| (o - p).abs() < 1e-15);
            let on_grid = (p - round_to_fraction_bits(p, mb as i32)).abs() < 1e-12;
            prop_assert!(unchanged || on_grid, "{p} neither original nor on grid");
        }
    }

    /// Gaussian mutation keeps every element inside the clamp range and
    /// sorted.
    #[test]
    fn gaussian_invariants(mut bps in proptest::collection::vec(-4.0f64..4.0, 1..12),
                           seed in 0u64..1000, std in 0.0f64..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        gaussian_mutation(&mut bps, std, (-4.0, 4.0), &mut rng);
        prop_assert!(sorted(&bps));
        prop_assert!(bps.iter().all(|&p| (-4.0..=4.0).contains(&p)));
    }

    /// Tournament selection returns a valid index and never loses to a
    /// strictly dominated candidate when k equals the population size and
    /// fitness values are distinct... (k independent draws with
    /// replacement: the best is chosen whenever it is drawn; we assert the
    /// chosen one is never the unique worst for k >= 2 with all-distinct
    /// fitness and a 3-element population drawn 64 times).
    #[test]
    fn tournament_valid_index(fitness in proptest::collection::vec(0.0f64..1.0, 2..20),
                              seed in 0u64..1000, k in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let i = tournament_select(&fitness, k, &mut rng);
            prop_assert!(i < fitness.len());
        }
    }

    /// The fitness evaluator's derived pwl never has NaN parameters and its
    /// MSE is finite for arbitrary breakpoint sets.
    #[test]
    fn evaluator_total(bps in proptest::collection::vec(-10.0f64..10.0, 1..16)) {
        let ev = FitnessEvaluator::new(
            Arc::new(|x: f64| x.tanh()),
            (-4.0, 4.0),
            0.02,
            SegmentFit::LeastSquares,
        );
        let (pwl, mse) = ev.fitness(&bps);
        prop_assert!(mse.is_finite());
        prop_assert!(pwl.slopes().iter().all(|k| k.is_finite()));
        prop_assert!(pwl.intercepts().iter().all(|b| b.is_finite()));
        // λ-aware fitness can only add error (it rounds a minimizer).
        let (_, mse_fxp) = ev.fitness_fxp(&bps, 5);
        prop_assert!(mse_fxp.is_finite());
    }

    /// Derived pwl breakpoints are always clamped into the search range.
    #[test]
    fn derived_breakpoints_clamped(bps in proptest::collection::vec(-100.0f64..100.0, 1..10)) {
        let ev = FitnessEvaluator::new(
            Arc::new(|x: f64| x.abs()),
            (-2.0, 2.0),
            0.05,
            SegmentFit::Interpolate,
        );
        let pwl = ev.derive_pwl(&bps);
        prop_assert!(pwl.breakpoints().iter().all(|&p| (-2.0..=2.0).contains(&p)));
    }

    /// The batched `mse` sweep equals the naive scalar accumulation
    /// bit-for-bit (same accumulation order, chunked).
    #[test]
    fn batched_mse_equals_scalar_sweep(bps in proptest::collection::vec(-4.0f64..4.0, 1..12)) {
        let ev = FitnessEvaluator::new(
            Arc::new(|x: f64| x.tanh()),
            (-4.0, 4.0),
            0.02,
            SegmentFit::LeastSquares,
        );
        let pwl = ev.derive_pwl(&bps);
        let batched = ev.mse(&pwl);
        // Scalar reference: what the seed's per-element loop computed.
        let n = ((4.0f64 - (-4.0)) / 0.02).round() as usize;
        let scalar = (0..n)
            .map(|i| {
                let x = -4.0 + i as f64 * 0.02;
                let d = pwl.eval(x) - x.tanh();
                d * d
            })
            .sum::<f64>()
            / n as f64;
        prop_assert!((batched - scalar).abs() <= 1e-15 * scalar.abs().max(1.0),
            "batched {batched} vs scalar {scalar}");
    }
}
