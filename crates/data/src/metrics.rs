//! Segmentation metrics: confusion matrix, IoU, mIoU, pixel accuracy.

use crate::scene::{IGNORE_LABEL, NUM_CLASSES};

/// A `NUM_CLASSES × NUM_CLASSES` confusion matrix accumulated over
/// predictions; rows = ground truth, columns = prediction.
///
/// # Example
///
/// ```
/// use gqa_data::ConfusionMatrix;
/// let mut cm = ConfusionMatrix::new();
/// cm.add(&[0, 0, 1, 255], &[0, 1, 1, 0]);
/// assert!((cm.pixel_accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<u64>,
}

impl Default for ConfusionMatrix {
    fn default() -> Self {
        Self::new()
    }
}

impl ConfusionMatrix {
    /// Empty matrix.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_CLASSES * NUM_CLASSES],
        }
    }

    /// Accumulates a batch of (ground-truth, prediction) pairs. Pixels with
    /// ground truth [`IGNORE_LABEL`] are skipped.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or out-of-range classes.
    pub fn add(&mut self, truth: &[u32], pred: &[u32]) {
        assert_eq!(truth.len(), pred.len(), "length mismatch");
        for (&t, &p) in truth.iter().zip(pred) {
            if t == IGNORE_LABEL {
                continue;
            }
            assert!((t as usize) < NUM_CLASSES, "truth class {t} out of range");
            assert!((p as usize) < NUM_CLASSES, "pred class {p} out of range");
            self.counts[t as usize * NUM_CLASSES + p as usize] += 1;
        }
    }

    /// Intersection-over-union of one class; `None` when the class never
    /// occurs (neither in truth nor prediction).
    #[must_use]
    pub fn iou(&self, class: usize) -> Option<f64> {
        assert!(class < NUM_CLASSES, "class out of range");
        let tp = self.counts[class * NUM_CLASSES + class];
        let fn_: u64 = (0..NUM_CLASSES)
            .filter(|&c| c != class)
            .map(|c| self.counts[class * NUM_CLASSES + c])
            .sum();
        let fp: u64 = (0..NUM_CLASSES)
            .filter(|&c| c != class)
            .map(|c| self.counts[c * NUM_CLASSES + class])
            .sum();
        let denom = tp + fn_ + fp;
        if denom == 0 {
            None
        } else {
            Some(tp as f64 / denom as f64)
        }
    }

    /// Mean IoU over the classes that occur (the paper's primary metric).
    /// Returns 0 for an empty matrix.
    #[must_use]
    pub fn miou(&self) -> f64 {
        let ious: Vec<f64> = (0..NUM_CLASSES).filter_map(|c| self.iou(c)).collect();
        if ious.is_empty() {
            0.0
        } else {
            ious.iter().sum::<f64>() / ious.len() as f64
        }
    }

    /// Overall pixel accuracy.
    #[must_use]
    pub fn pixel_accuracy(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..NUM_CLASSES)
            .map(|c| self.counts[c * NUM_CLASSES + c])
            .sum();
        correct as f64 / total as f64
    }

    /// Total counted pixels.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let mut cm = ConfusionMatrix::new();
        let truth: Vec<u32> = (0..NUM_CLASSES as u32).collect();
        cm.add(&truth, &truth);
        assert_eq!(cm.miou(), 1.0);
        assert_eq!(cm.pixel_accuracy(), 1.0);
    }

    #[test]
    fn half_right_two_classes() {
        let mut cm = ConfusionMatrix::new();
        cm.add(&[0, 0, 1, 1], &[0, 1, 1, 0]);
        // class 0: tp=1, fn=1, fp=1 -> 1/3; class 1 symmetric.
        assert!((cm.iou(0).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((cm.miou() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.pixel_accuracy(), 0.5);
    }

    #[test]
    fn absent_classes_excluded_from_mean() {
        let mut cm = ConfusionMatrix::new();
        cm.add(&[0, 0], &[0, 0]);
        assert_eq!(cm.iou(5), None);
        assert_eq!(cm.miou(), 1.0);
    }

    #[test]
    fn ignore_label_skipped() {
        let mut cm = ConfusionMatrix::new();
        cm.add(&[IGNORE_LABEL, 0], &[3, 0]);
        assert_eq!(cm.total(), 1);
        assert_eq!(cm.miou(), 1.0);
    }

    #[test]
    fn false_prediction_creates_fp_class() {
        let mut cm = ConfusionMatrix::new();
        cm.add(&[0], &[1]);
        assert_eq!(cm.iou(0), Some(0.0));
        assert_eq!(cm.iou(1), Some(0.0)); // fp only
        assert_eq!(cm.miou(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::new();
        a.add(&[0], &[0]);
        let mut b = ConfusionMatrix::new();
        b.add(&[0], &[1]);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert!((a.iou(0).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_class_panics() {
        let mut cm = ConfusionMatrix::new();
        cm.add(&[99], &[0]);
    }
}
