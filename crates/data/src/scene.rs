//! The procedural scene generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gqa_tensor::Tensor;

/// Number of semantic classes (matches Cityscapes' 19 evaluation classes).
pub const NUM_CLASSES: usize = 19;

/// Label value marking pixels excluded from loss and metrics.
pub const IGNORE_LABEL: u32 = 255;

/// Cityscapes evaluation-class names, in id order.
const CLASS_NAMES: [&str; NUM_CLASSES] = [
    "road",
    "sidewalk",
    "building",
    "wall",
    "fence",
    "pole",
    "traffic light",
    "traffic sign",
    "vegetation",
    "terrain",
    "sky",
    "person",
    "rider",
    "car",
    "truck",
    "bus",
    "train",
    "motorcycle",
    "bicycle",
];

/// Mean RGB palette per class (what the generator renders before noise);
/// loosely the Cityscapes color scheme scaled to [0, 1].
const PALETTE: [[f32; 3]; NUM_CLASSES] = [
    [0.50, 0.25, 0.50], // road
    [0.95, 0.35, 0.90], // sidewalk
    [0.27, 0.27, 0.27], // building
    [0.40, 0.40, 0.61], // wall
    [0.74, 0.60, 0.60], // fence
    [0.60, 0.60, 0.60], // pole
    [0.98, 0.67, 0.12], // traffic light
    [0.86, 0.86, 0.00], // traffic sign
    [0.42, 0.56, 0.14], // vegetation
    [0.60, 0.98, 0.60], // terrain
    [0.27, 0.51, 0.71], // sky
    [0.86, 0.08, 0.24], // person
    [1.00, 0.00, 0.00], // rider
    [0.00, 0.00, 0.56], // car
    [0.00, 0.00, 0.27], // truck
    [0.00, 0.24, 0.39], // bus
    [0.00, 0.31, 0.39], // train
    [0.00, 0.00, 0.90], // motorcycle
    [0.47, 0.04, 0.13], // bicycle
];

/// Returns the class name for an id.
///
/// # Panics
///
/// Panics if `id >= NUM_CLASSES`.
#[must_use]
pub fn class_name(id: usize) -> &'static str {
    CLASS_NAMES[id]
}

/// Generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneConfig {
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Per-pixel Gaussian-ish color noise amplitude.
    pub noise: f32,
    /// Number of foreground objects (cars, people, signs, …) per scene.
    pub objects: usize,
    /// Fraction of border pixels marked [`IGNORE_LABEL`] (Cityscapes has
    /// void regions; exercises the ignore path).
    pub ignore_border: usize,
}

impl SceneConfig {
    /// Tiny scenes for unit tests: 32×64.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            height: 32,
            width: 64,
            noise: 0.05,
            objects: 6,
            ignore_border: 1,
        }
    }

    /// The benchmark configuration used by the Table 4/5 harness: 48×96.
    #[must_use]
    pub fn benchmark() -> Self {
        Self {
            height: 48,
            width: 96,
            noise: 0.05,
            objects: 9,
            ignore_border: 1,
        }
    }
}

/// One generated scene.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// CHW image in `[0, 1]`.
    pub image: Tensor,
    /// Row-major class labels (`height·width`), `IGNORE_LABEL` on the
    /// ignored border.
    pub labels: Vec<u32>,
}

/// The deterministic dataset: `sample(i)` always returns the same scene
/// for a given `(config, seed, i)`.
#[derive(Debug, Clone)]
pub struct SynthScapes {
    config: SceneConfig,
    seed: u64,
}

impl SynthScapes {
    /// Creates the dataset.
    ///
    /// # Panics
    ///
    /// Panics on degenerate dimensions (smaller than 16×16).
    #[must_use]
    pub fn new(config: SceneConfig, seed: u64) -> Self {
        assert!(config.height >= 16 && config.width >= 16, "scene too small");
        Self { config, seed }
    }

    /// The generator configuration.
    #[must_use]
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Generates scene `index`.
    #[must_use]
    pub fn sample(&self, index: u64) -> Sample {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (index.wrapping_mul(0x9E3779B97F4A7C15)));
        let (h, w) = (self.config.height, self.config.width);
        let mut labels = vec![0u32; h * w];

        // --- layout: sky / buildings / vegetation / sidewalk / road bands.
        let horizon = h * rng.gen_range(25..40) / 100;
        let road_top = h * rng.gen_range(60..75) / 100;
        let sidewalk_top = road_top.saturating_sub(h / 12).max(horizon + 1);
        for y in 0..h {
            let base = if y < horizon {
                10 // sky
            } else if y < sidewalk_top {
                2 // building band (objects overwrite)
            } else if y < road_top {
                1 // sidewalk
            } else {
                0 // road
            };
            for x in 0..w {
                labels[y * w + x] = base;
            }
        }

        // Buildings: a few vertical blocks of varying height over the band.
        let n_buildings = rng.gen_range(2..5);
        for _ in 0..n_buildings {
            let bw = rng.gen_range(w / 8..w / 3);
            let bx = rng.gen_range(0..w.saturating_sub(bw).max(1));
            let btop = rng.gen_range(2..horizon.max(3));
            for y in btop..sidewalk_top {
                for x in bx..(bx + bw).min(w) {
                    labels[y * w + x] = 2;
                }
            }
        }

        // Vegetation patches at the horizon line, terrain below them.
        let n_veg = rng.gen_range(1..4);
        for _ in 0..n_veg {
            let vw = rng.gen_range(w / 10..w / 4);
            let vx = rng.gen_range(0..w.saturating_sub(vw).max(1));
            let vh = rng.gen_range(2..(sidewalk_top - horizon).max(3));
            for y in horizon.saturating_sub(vh / 2)..(horizon + vh).min(sidewalk_top) {
                for x in vx..(vx + vw).min(w) {
                    labels[y * w + x] = if y > horizon + vh / 2 { 9 } else { 8 };
                }
            }
        }

        // Foreground objects.
        for _ in 0..self.config.objects {
            self.place_object(&mut rng, &mut labels, horizon, sidewalk_top, road_top);
        }

        // Poles with lights/signs (thin verticals from the sidewalk).
        let n_poles = rng.gen_range(1..4);
        for _ in 0..n_poles {
            let px = rng.gen_range(2..w - 2);
            let ptop = rng.gen_range(horizon..sidewalk_top.max(horizon + 1));
            for y in ptop..road_top.min(h) {
                labels[y * w + px] = 5;
            }
            // Head: light or sign.
            let head = if rng.gen_bool(0.5) { 6 } else { 7 };
            for y in ptop.saturating_sub(2)..ptop {
                for x in px.saturating_sub(1)..(px + 2).min(w) {
                    labels[y * w + x] = head;
                }
            }
        }

        // Ignore border.
        let ib = self.config.ignore_border;
        for y in 0..h {
            for x in 0..w {
                if y < ib || x < ib || y >= h - ib || x >= w - ib {
                    labels[y * w + x] = IGNORE_LABEL;
                }
            }
        }

        // --- render: palette + vertical illumination gradient + noise.
        let mut image = vec![0.0f32; 3 * h * w];
        for y in 0..h {
            let light = 0.9 + 0.2 * (y as f32 / h as f32);
            for x in 0..w {
                let lab = labels[y * w + x];
                let color = if lab == IGNORE_LABEL {
                    [0.0, 0.0, 0.0]
                } else {
                    PALETTE[lab as usize]
                };
                for (ch, &c) in color.iter().enumerate() {
                    let noise = rng.gen_range(-self.config.noise..=self.config.noise);
                    image[ch * h * w + y * w + x] = (c * light + noise).clamp(0.0, 1.0);
                }
            }
        }

        Sample {
            image: Tensor::from_vec(image, &[3, h, w]),
            labels,
        }
    }

    fn place_object(
        &self,
        rng: &mut StdRng,
        labels: &mut [u32],
        horizon: usize,
        sidewalk_top: usize,
        road_top: usize,
    ) {
        let (h, w) = (self.config.height, self.config.width);
        // Vehicles on the road, people/bicycles on the sidewalk, walls and
        // fences in the building band.
        let choices: [(u32, usize, usize, usize); 9] = [
            (13, road_top, h, 3),            // car
            (14, road_top, h, 4),            // truck
            (15, road_top, h, 4),            // bus
            (17, road_top, h, 2),            // motorcycle
            (11, sidewalk_top, road_top, 2), // person
            (12, sidewalk_top, road_top, 2), // rider
            (18, sidewalk_top, road_top, 2), // bicycle
            (3, horizon, sidewalk_top, 3),   // wall
            (4, horizon, sidewalk_top, 3),   // fence
        ];
        let (class, ymin, ymax, size) = choices[rng.gen_range(0..choices.len())];
        if ymax <= ymin + 2 {
            return;
        }
        let oh = rng.gen_range(2..=(size * 2).min(ymax - ymin - 1).max(2));
        let ow = rng.gen_range(2..=(size * 3).min(w / 3).max(2));
        let oy = rng.gen_range(ymin..(ymax - oh).max(ymin + 1));
        let ox = rng.gen_range(0..w.saturating_sub(ow).max(1));
        for y in oy..(oy + oh).min(h) {
            for x in ox..(ox + ow).min(w) {
                labels[y * w + x] = class;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_per_index() {
        let ds = SynthScapes::new(SceneConfig::tiny(), 42);
        assert_eq!(ds.sample(3), ds.sample(3));
        assert_ne!(ds.sample(3), ds.sample(4));
        let other_seed = SynthScapes::new(SceneConfig::tiny(), 43);
        assert_ne!(ds.sample(3), other_seed.sample(3));
    }

    #[test]
    fn labels_are_valid() {
        let ds = SynthScapes::new(SceneConfig::tiny(), 1);
        for i in 0..10 {
            let s = ds.sample(i);
            for &l in &s.labels {
                assert!((l as usize) < NUM_CLASSES || l == IGNORE_LABEL, "label {l}");
            }
        }
    }

    #[test]
    fn image_in_unit_range() {
        let ds = SynthScapes::new(SceneConfig::tiny(), 2);
        let s = ds.sample(0);
        assert!(s.image.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn scene_diversity() {
        // Across a handful of scenes, most classes appear at least once.
        let ds = SynthScapes::new(SceneConfig::benchmark(), 3);
        let mut seen = HashSet::new();
        for i in 0..30 {
            for &l in &ds.sample(i).labels {
                if l != IGNORE_LABEL {
                    seen.insert(l);
                }
            }
        }
        assert!(seen.len() >= 14, "only {} classes generated", seen.len());
        // The stage classes always exist.
        for must in [0u32, 1, 2, 10] {
            assert!(seen.contains(&must), "missing class {must}");
        }
    }

    #[test]
    fn ignore_border_applied() {
        let ds = SynthScapes::new(SceneConfig::tiny(), 4);
        let s = ds.sample(0);
        let (h, w) = (32, 64);
        for x in 0..w {
            assert_eq!(s.labels[x], IGNORE_LABEL);
            assert_eq!(s.labels[(h - 1) * w + x], IGNORE_LABEL);
        }
    }

    #[test]
    fn class_names_cover_palette() {
        for i in 0..NUM_CLASSES {
            assert!(!class_name(i).is_empty());
        }
    }

    #[test]
    fn classes_are_color_separable() {
        // Mean rendered color of each major class should be close to its
        // palette entry — the signal the models learn.
        let ds = SynthScapes::new(SceneConfig::benchmark(), 5);
        let s = ds.sample(1);
        let (h, w) = (48usize, 96usize);
        for target in [0u32, 2, 10] {
            let mut sum = [0.0f64; 3];
            let mut n = 0usize;
            for y in 0..h {
                for x in 0..w {
                    if s.labels[y * w + x] == target {
                        for (ch, acc) in sum.iter_mut().enumerate() {
                            *acc += s.image.data[ch * h * w + y * w + x] as f64;
                        }
                        n += 1;
                    }
                }
            }
            assert!(n > 0, "class {target} absent");
            for ch in 0..3 {
                let mean = sum[ch] / n as f64;
                let pal = PALETTE[target as usize][ch] as f64;
                assert!(
                    (mean - pal).abs() < 0.25,
                    "class {target} ch {ch}: mean {mean} vs palette {pal}"
                );
            }
        }
    }
}
