//! # gqa-data — SynthScapes: a synthetic Cityscapes substitute
//!
//! The paper fine-tunes on Cityscapes (2 975 train / 500 val images at
//! 1024×2048, 19 classes). That dataset cannot ship with this repository,
//! so this crate provides **SynthScapes**: a deterministic procedural
//! generator of urban-like scenes with the same 19-class palette (road,
//! sidewalk, building, …, bicycle) at configurable resolution, plus the
//! standard mean-IoU evaluation stack.
//!
//! Why the substitution preserves the relevant behaviour: the paper's
//! model-level experiments measure how *operator approximation error*
//! (pwl-LUT replacing GELU/EXP/DIV/RSQRT/HSWISH) propagates to segmentation
//! quality. That propagation depends on the network and where the
//! non-linearities sit, not on the photographic content of the dataset;
//! a procedurally generated scene distribution with learnable structure
//! exercises the identical code paths end to end.
//!
//! ## Example
//!
//! ```
//! use gqa_data::{SceneConfig, SynthScapes, NUM_CLASSES};
//!
//! let ds = SynthScapes::new(SceneConfig::tiny(), 7);
//! let sample = ds.sample(0);
//! assert_eq!(sample.image.shape, vec![3, 32, 64]);
//! assert_eq!(sample.labels.len(), 32 * 64);
//! assert!(sample.labels.iter().all(|&c| (c as usize) < NUM_CLASSES || c == 255));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod scene;

pub use metrics::ConfusionMatrix;
pub use scene::{class_name, Sample, SceneConfig, SynthScapes, IGNORE_LABEL, NUM_CLASSES};
