//! Property-based tests for the dataset and metrics.

use gqa_data::{ConfusionMatrix, SceneConfig, SynthScapes, IGNORE_LABEL, NUM_CLASSES};
use proptest::prelude::*;

proptest! {
    /// Any generated scene is well-formed: labels valid, image in [0, 1],
    /// and the sample is reproducible.
    #[test]
    fn scenes_always_well_formed(seed in 0u64..500, index in 0u64..50) {
        let ds = SynthScapes::new(SceneConfig::tiny(), seed);
        let s = ds.sample(index);
        prop_assert_eq!(s.image.shape.clone(), vec![3, 32, 64]);
        prop_assert!(s.image.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!(s
            .labels
            .iter()
            .all(|&l| (l as usize) < NUM_CLASSES || l == IGNORE_LABEL));
        prop_assert_eq!(ds.sample(index), s);
    }

    /// mIoU and pixel accuracy are always in [0, 1], and perfect
    /// predictions score 1.
    #[test]
    fn metrics_bounded(truth in proptest::collection::vec(0u32..NUM_CLASSES as u32, 1..256),
                       pred in proptest::collection::vec(0u32..NUM_CLASSES as u32, 1..256)) {
        let n = truth.len().min(pred.len());
        let mut cm = ConfusionMatrix::new();
        cm.add(&truth[..n], &pred[..n]);
        prop_assert!((0.0..=1.0).contains(&cm.miou()));
        prop_assert!((0.0..=1.0).contains(&cm.pixel_accuracy()));

        let mut perfect = ConfusionMatrix::new();
        perfect.add(&truth[..n], &truth[..n]);
        prop_assert_eq!(perfect.miou(), 1.0);
        prop_assert_eq!(perfect.pixel_accuracy(), 1.0);
    }

    /// mIoU never exceeds pixel accuracy... is false in general; instead:
    /// merging two matrices yields a total equal to the sum of totals.
    #[test]
    fn merge_is_additive(a in proptest::collection::vec(0u32..19, 1..64),
                         b in proptest::collection::vec(0u32..19, 1..64)) {
        let mut ca = ConfusionMatrix::new();
        ca.add(&a, &a);
        let mut cb = ConfusionMatrix::new();
        cb.add(&b, &b);
        let (ta, tb) = (ca.total(), cb.total());
        ca.merge(&cb);
        prop_assert_eq!(ca.total(), ta + tb);
    }

    /// Ignored pixels never contribute to any metric.
    #[test]
    fn ignore_is_inert(truth in proptest::collection::vec(0u32..19, 1..64)) {
        let mut with_ignored = ConfusionMatrix::new();
        with_ignored.add(&truth, &truth);
        let mut padded_truth = truth.clone();
        let mut padded_pred = truth.clone();
        for _ in 0..16 {
            padded_truth.push(IGNORE_LABEL);
            padded_pred.push(7); // arbitrary prediction on ignored pixels
        }
        let mut cm = ConfusionMatrix::new();
        cm.add(&padded_truth, &padded_pred);
        prop_assert_eq!(cm.total(), with_ignored.total());
        prop_assert_eq!(cm.miou(), with_ignored.miou());
    }
}
