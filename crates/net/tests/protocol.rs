//! Protocol robustness: hostile bytes never panic the stack.
//!
//! Two layers under test. The pure codec layer: every mutation of a
//! valid frame — truncation at each index, version/opcode corruption,
//! poisoned tensor headers, trailing garbage — decodes to a typed
//! [`WireError`], never a panic. The server layer: a live `NetServer`
//! fed garbage, oversized prefixes, half-frames, and abrupt
//! disconnects answers with a typed `Protocol` error (or just drops the
//! connection), stays alive for well-behaved clients, and shuts down
//! cleanly afterwards.

use std::io::{Read, Write};
use std::net::TcpStream;

use gqa_net::{
    decode_request, decode_response, encode_request, encode_response, write_frame, NetClient,
    NetConfig, NetServer, RemoteError, RequestFrame, ResponseFrame, WireError, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use gqa_serve::{EngineBuilder, OperatorPlan};
use gqa_served::{BatchConfig, ModelSpec, ServedBuilder, ServedConfig};
use gqa_tensor::Tensor;

const DIM: usize = 4;

fn corpus() -> Vec<Vec<u8>> {
    vec![
        encode_request(&RequestFrame::Hello {
            client: "corpus".into(),
        }),
        encode_request(&RequestFrame::Infer {
            tenant: 3,
            model: 1,
            input: Tensor::from_vec(vec![0.5, -0.25, f32::NAN, 7.0], &[2, 2]),
        }),
        encode_request(&RequestFrame::DecodeOpen {
            tenant: 0,
            model: 0,
        }),
        encode_request(&RequestFrame::DecodeStep {
            session: 9,
            input: Tensor::from_vec(vec![1.0], &[1]),
        }),
        encode_request(&RequestFrame::Stats),
    ]
}

/// Every truncation of every valid request decodes to a typed error —
/// the decoder is total over byte prefixes.
#[test]
fn every_truncation_is_a_typed_error() {
    for frame in corpus() {
        for cut in 0..frame.len() {
            let r = decode_request(&frame[..cut]);
            assert!(
                r.is_err(),
                "truncating to {cut}/{} bytes must not decode",
                frame.len()
            );
        }
    }
}

/// Single-byte corruption anywhere in a valid frame either still
/// decodes (the byte was payload) or fails typed — it never panics.
/// This is the fuzz-shaped sweep: 256 variants per byte position.
#[test]
fn single_byte_corruption_never_panics() {
    for frame in corpus() {
        for pos in 0..frame.len() {
            for v in [0x00u8, 0x01, 0x7F, 0x80, 0xFE, 0xFF] {
                let mut bad = frame.clone();
                bad[pos] = v;
                let _ = decode_request(&bad); // must return, never panic
                let _ = decode_response(&bad);
            }
        }
    }
}

#[test]
fn version_and_opcode_corruption_are_typed() {
    let mut frame = encode_request(&RequestFrame::Stats);
    frame[0] = PROTOCOL_VERSION + 1;
    assert!(matches!(
        decode_request(&frame),
        Err(WireError::BadVersion(v)) if v == PROTOCOL_VERSION + 1
    ));
    let mut frame = encode_request(&RequestFrame::Stats);
    frame[1] = 0x6E;
    assert!(matches!(
        decode_request(&frame),
        Err(WireError::BadOpcode(0x6E))
    ));
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut frame = encode_request(&RequestFrame::Stats);
    frame.push(0xAB);
    assert!(matches!(
        decode_request(&frame),
        Err(WireError::TrailingBytes { extra: 1 })
    ));
}

/// Poisoned tensor headers — zero dims, too many dims, a dim-product
/// that overflows or exceeds the frame bound — all fail typed.
#[test]
fn poisoned_tensor_headers_fail_typed() {
    let valid = encode_request(&RequestFrame::Infer {
        tenant: 0,
        model: 0,
        input: Tensor::from_vec(vec![1.0, 2.0], &[2]),
    });
    // Layout: version, opcode, tenant u64, model u64, ndim u8, dims...
    let ndim_at = 1 + 1 + 8 + 8;
    for bad_ndim in [0u8, 9, 255] {
        let mut f = valid.clone();
        f[ndim_at] = bad_ndim;
        assert!(
            decode_request(&f).is_err(),
            "ndim {bad_ndim} must be rejected"
        );
    }
    // A huge dim: the element count must be bounded by the frame cap,
    // not trusted into an allocation.
    let mut f = valid.clone();
    f[ndim_at + 1..ndim_at + 5].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(decode_request(&f).is_err(), "absurd dim must be rejected");
}

// ---------------------------------------------------------------------
// Live-server robustness
// ---------------------------------------------------------------------

fn tiny_server() -> NetServer {
    let served = ServedBuilder::new(EngineBuilder::new(OperatorPlan::new()).build().unwrap())
        .with_model(ModelSpec::new("double", &[DIM], |g, x| g.scale(x, 2.0)))
        .with_config(ServedConfig {
            batch: BatchConfig {
                max_batch: 4,
                max_wait: 0,
                capacity: 16,
            },
            workers: 1,
            tenants: 2,
            ..ServedConfig::default()
        })
        .with_virtual_clock()
        .build();
    NetServer::spawn(served, "127.0.0.1:0", NetConfig::default()).expect("bind")
}

/// Reads exactly one response frame off a raw stream.
fn read_response(s: &mut TcpStream) -> Option<ResponseFrame> {
    let mut len = [0u8; 4];
    s.read_exact(&mut len).ok()?;
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    s.read_exact(&mut payload).ok()?;
    decode_response(&payload).ok()
}

/// A well-framed payload of garbage gets a typed `Protocol` error back,
/// then the server closes that connection — and keeps serving others.
#[test]
fn garbage_payload_gets_a_typed_error_then_close() {
    let server = tiny_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut s, &[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
    match read_response(&mut s) {
        Some(ResponseFrame::Error(RemoteError::Protocol(_))) => {}
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
    // The connection is closed after the error reply.
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    assert_eq!(server.stats().protocol_errors, 1);

    // A well-behaved client is unaffected.
    let mut client = NetClient::connect(server.addr(), "fine").unwrap();
    let out = client
        .infer(0, 0, Tensor::from_vec(vec![1.0; DIM], &[DIM]))
        .unwrap();
    assert_eq!(out.data, vec![2.0; DIM]);
}

/// A hostile length prefix beyond the frame cap is refused without
/// allocating, typed, and the connection is dropped.
#[test]
fn oversized_prefix_is_refused_without_allocation() {
    let server = tiny_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(&(u32::try_from(MAX_FRAME_LEN).unwrap() + 1).to_le_bytes())
        .unwrap();
    match read_response(&mut s) {
        Some(ResponseFrame::Error(RemoteError::Protocol(msg))) => {
            assert!(msg.contains("oversized"), "message names the cause: {msg}");
        }
        other => panic!("expected a typed oversized error, got {other:?}"),
    }
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    assert_eq!(server.stats().protocol_errors, 1);
}

/// Half a frame followed by an abrupt close is a clean drop: no reply
/// owed, no protocol-error count (the peer just died), no wedge.
#[test]
fn half_frame_disconnect_is_a_clean_drop() {
    let server = tiny_server();
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let frame = encode_request(&RequestFrame::Stats);
        // Length prefix promises more than we send.
        s.write_all(&u32::try_from(frame.len()).unwrap().to_le_bytes())
            .unwrap();
        s.write_all(&frame[..frame.len() / 2]).unwrap();
        // Drop: mid-frame EOF.
    }
    // The server shrugs: a fresh client gets full service.
    let mut client = NetClient::connect(server.addr(), "after").unwrap();
    assert!(client
        .stats()
        .unwrap()
        .contains("gqa_served_submitted_total"));
    assert_eq!(server.stats().protocol_errors, 0);
}

/// Unknown-version frames are refused per-frame (typed), not by
/// killing the listener.
#[test]
fn unknown_version_is_refused_typed() {
    let server = tiny_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let mut frame = encode_request(&RequestFrame::Stats);
    frame[0] = 0x7F;
    write_frame(&mut s, &frame).unwrap();
    match read_response(&mut s) {
        Some(ResponseFrame::Error(RemoteError::Protocol(msg))) => {
            assert!(msg.contains("version"), "message names the cause: {msg}");
        }
        other => panic!("expected a typed version error, got {other:?}"),
    }
}

/// Many hostile connections in a row never take the server down, and
/// shutdown afterwards is clean (drop returns; nothing is wedged).
#[test]
fn hostile_connection_storm_then_clean_shutdown() {
    let server = tiny_server();
    for i in 0..16 {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        match i % 4 {
            0 => {
                let _ = write_frame(&mut s, &[i as u8; 3]);
            }
            1 => {
                let _ = s.write_all(&u32::MAX.to_le_bytes());
            }
            2 => {
                let _ = s.write_all(&[i as u8]); // lone partial prefix
            }
            _ => {} // connect-and-leave
        }
        // All dropped abruptly, replies unread.
    }
    // Still serving.
    let mut client = NetClient::connect(server.addr(), "survivor").unwrap();
    let out = client
        .infer(1, 0, Tensor::from_vec(vec![-1.5; DIM], &[DIM]))
        .unwrap();
    assert_eq!(out.data, vec![-3.0; DIM]);
    drop(server); // must not hang
}

/// Response-side codec round-trips every frame kind, bit-for-bit on
/// tensor payloads (NaN included).
#[test]
fn response_codec_round_trips() {
    let frames = vec![
        ResponseFrame::HelloOk {
            version: PROTOCOL_VERSION,
            models: 2,
            tenants: 4,
        },
        ResponseFrame::Output {
            output: Tensor::from_vec(vec![f32::NAN, -0.0, 1.5e-40], &[3]),
        },
        ResponseFrame::DecodeOpened { session: 7 },
        ResponseFrame::StatsText {
            text: "gqa_served_submitted_total 3\n".into(),
        },
        ResponseFrame::Error(RemoteError::QuotaExceeded {
            queued: 64,
            quota: 64,
        }),
    ];
    for f in frames {
        let rt = decode_response(&encode_response(&f)).unwrap();
        match (&f, &rt) {
            (ResponseFrame::Output { output: a }, ResponseFrame::Output { output: b }) => {
                assert_eq!(a.shape, b.shape);
                let bits = |t: &Tensor| t.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(a), bits(b), "tensor payloads round-trip bitwise");
            }
            _ => assert_eq!(f, rt),
        }
    }
}
