//! Loopback equivalence: the socket adds nothing and loses nothing.
//!
//! Every test runs the full stack — engine, `Served` front-end on a
//! virtual clock, `NetServer` on an ephemeral loopback port, a real
//! `NetClient` — and pins the load-bearing transport contract: a
//! response read off the socket is `to_bits`-identical to a
//! batch-of-one [`dispatch_batch`] reference on the same engine state.
//! That holds on the exact backend, the LUT backend, across a
//! mid-trace [`Engine::swap`] and a mid-trace [`Engine::refresh`], and
//! step-for-step for KV-cached decode sessions. Typed server errors
//! survive the wire with their payloads intact, and a client that
//! disconnects mid-flight wedges nothing.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use gqa_funcs::NonLinearOp;
use gqa_models::{DecoderConfig, TinyDecoder};
use gqa_net::{NetClient, NetConfig, NetError, NetServer, RemoteError};
use gqa_serve::{
    shard_file_name, Engine, EngineBuilder, LutRegistry, Method, OpPlan, OperatorPlan, Session,
};
use gqa_served::{
    dispatch_batch, generate_trace, request_input, BatchConfig, DecodeState, LoadGenConfig,
    ModelDecode, ModelForward, ModelSpec, ServedBuilder, ServedConfig,
};
use gqa_tensor::{BufferPool, EvalMode, Graph, KvCache, NodeId, ParamStore, Tensor, UnaryKind};

const DIM: usize = 8;
const MAX_LEN: usize = 32;

fn base_plan() -> OpPlan {
    OpPlan::new(Method::GqaRm).with_seed(1).with_budget(0.05)
}

fn exact_engine() -> Engine {
    EngineBuilder::new(OperatorPlan::new()).build().unwrap()
}

fn lut_engine() -> Engine {
    EngineBuilder::new(OperatorPlan::new().with(NonLinearOp::Gelu, base_plan()))
        .build()
        .unwrap()
}

/// The same transformer-ish block the served-level suites pin: matmul,
/// GELU (whatever datapath the engine serves), row softmax, layer norm.
fn mlp_spec() -> ModelSpec {
    let weight: Vec<f32> = (0..DIM * DIM)
        .map(|i| ((i as f32) * 0.37).sin() * 0.5)
        .collect();
    ModelSpec::new("mlp", &[DIM], move |g, x| {
        let w = g.input(Tensor::from_vec(weight.clone(), &[DIM, DIM]));
        let h = g.matmul(x, w);
        let u = g.unary(h, UnaryKind::Gelu);
        let s = g.softmax_rows(u);
        g.layernorm_rows(s, 1e-5)
    })
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data.iter().map(|v| v.to_bits()).collect()
}

/// Virtual-clock server behind a loopback socket. `max_wait = 0` keeps
/// every poll deadline-ready so nothing waits on clock movement.
fn loopback(engine: Engine, spec: ModelSpec) -> NetServer {
    let served = ServedBuilder::new(engine)
        .with_model(spec)
        .with_config(ServedConfig {
            batch: BatchConfig {
                max_batch: 4,
                max_wait: 0,
                capacity: 64,
            },
            workers: 2,
            tenants: 4,
            ..ServedConfig::default()
        })
        .with_virtual_clock()
        .build();
    NetServer::spawn(served, "127.0.0.1:0", NetConfig::default()).expect("bind loopback")
}

/// Batch-of-one reference bits on `session` — what every socket
/// response must equal.
fn reference(session: &Session, spec: &ModelSpec, x: &Tensor, pool: &mut BufferPool) -> Vec<u32> {
    bits(&dispatch_batch(session, spec, std::slice::from_ref(x), pool)[0])
}

/// Replays the deterministic Zipf trace through a socket client and
/// checks every response against the batch-of-one reference.
fn assert_socket_equivalence(engine: Engine, tag: &str) {
    let spec = mlp_spec();
    let server = loopback(engine, spec.clone());
    let session = server.served().engine().session();
    let mut pool = BufferPool::new();
    let mut client = NetClient::connect(server.addr(), tag).unwrap();
    assert_eq!(client.server_info().models, 1);
    assert_eq!(client.server_info().tenants, 4);

    let trace = generate_trace(&LoadGenConfig {
        seed: 0x5EED,
        requests: 24,
        tenants: 4,
        models: 1,
        skew: 1.0,
        mean_gap: 1,
    });
    for (i, e) in trace.iter().enumerate() {
        let input = request_input(e, &[DIM]);
        let want = reference(&session, &spec, &input, &mut pool);
        let got = client.infer(e.tenant as u64, 0, input).unwrap();
        assert_eq!(
            bits(&got),
            want,
            "socket response {i} ({tag}) diverges from batch-of-one"
        );
    }
    assert_eq!(server.served().stats().completed, trace.len() as u64);
}

#[test]
fn socket_responses_match_batch_of_one_on_the_exact_backend() {
    assert_socket_equivalence(exact_engine(), "exact");
}

#[test]
fn socket_responses_match_batch_of_one_on_the_lut_backend() {
    assert_socket_equivalence(lut_engine(), "lut");
}

/// A mid-trace [`Engine::swap`] under live socket traffic: responses
/// before the swap match the old artifact, responses after match the
/// new one, and the two artifacts observably differ.
#[test]
fn socket_equivalence_holds_across_a_mid_trace_swap() {
    let spec = mlp_spec();
    let server = loopback(lut_engine(), spec.clone());
    let session = server.served().engine().session();
    let mut pool = BufferPool::new();
    let mut client = NetClient::connect(server.addr(), "swap").unwrap();

    let inputs: Vec<Tensor> = (0..6)
        .map(|i| {
            Tensor::from_vec(
                (0..DIM)
                    .map(|j| ((i * DIM + j) as f32 * 0.13).sin())
                    .collect(),
                &[DIM],
            )
        })
        .collect();

    // Phase 1: old artifact.
    let before: Vec<Vec<u32>> = inputs[..3]
        .iter()
        .map(|x| reference(&session, &spec, x, &mut pool))
        .collect();
    for (x, want) in inputs[..3].iter().zip(&before) {
        assert_eq!(&bits(&client.infer(0, 0, x.clone()).unwrap()), want);
    }

    // Mid-trace retune through the co-located control plane. The
    // blocking client is lockstep, so the server is quiesced here.
    server
        .served()
        .engine()
        .swap(NonLinearOp::Gelu, base_plan().with_seed(2))
        .unwrap();

    // Phase 2: new artifact.
    for x in &inputs[3..] {
        let want = reference(&session, &spec, x, &mut pool);
        assert_eq!(bits(&client.infer(0, 0, x.clone()).unwrap()), want);
    }
    let after_on_old_input = reference(&session, &spec, &inputs[0], &mut pool);
    assert_ne!(before[0], after_on_old_input, "the swap must be observable");
    assert_eq!(server.served().engine().stats().swaps, 1);
}

/// A mid-trace [`Engine::refresh`] from a republished shard under live
/// socket traffic — the offline-rebuilder handoff, over the wire.
#[test]
fn socket_equivalence_holds_across_a_mid_trace_refresh() {
    let dir: PathBuf = std::env::temp_dir().join(format!("gqa-net-refresh-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let engine = EngineBuilder::new(OperatorPlan::new().with(NonLinearOp::Gelu, base_plan()))
        .with_snapshot_dir(&dir)
        .build()
        .unwrap();
    engine.save_shards().unwrap();

    let spec = mlp_spec();
    let server = loopback(engine, spec.clone());
    let session = server.served().engine().session();
    let mut pool = BufferPool::new();
    let mut client = NetClient::connect(server.addr(), "refresh").unwrap();

    let input = Tensor::from_vec((0..DIM).map(|j| (j as f32 * 0.29).cos()).collect(), &[DIM]);
    let before_ref = reference(&session, &spec, &input, &mut pool);
    assert_eq!(
        bits(&client.infer(0, 0, input.clone()).unwrap()),
        before_ref
    );

    // Republish the shard with a different artifact under the same key,
    // newer mtime, then refresh under traffic (the offline-rebuilder
    // technique the served-level refresh test pins).
    let rebuilt = LutRegistry::new()
        .get_or_build(&base_plan().with_seed(9).spec(NonLinearOp::Gelu))
        .unwrap();
    let publish = LutRegistry::new();
    publish.insert(
        base_plan().spec(NonLinearOp::Gelu).key().unwrap(),
        (*rebuilt).clone(),
    );
    let shard = dir.join(shard_file_name(NonLinearOp::Gelu));
    std::fs::write(&shard, publish.snapshot_json()).unwrap();
    std::fs::File::options()
        .write(true)
        .open(&shard)
        .unwrap()
        .set_modified(SystemTime::now() + Duration::from_secs(3))
        .unwrap();
    assert_eq!(server.served().engine().refresh().unwrap(), 1);

    let after_ref = reference(&session, &spec, &input, &mut pool);
    assert_ne!(before_ref, after_ref, "the refresh must be observable");
    assert_eq!(bits(&client.infer(0, 0, input).unwrap()), after_ref);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Decode over the wire
// ---------------------------------------------------------------------

/// The same served decoder wrapper the served-level decode suite uses:
/// forwards treat each row as a fresh single-token sequence, the decode
/// entry point runs KV-cached steps.
struct DecoderModel {
    model: TinyDecoder,
    ps: Arc<ParamStore>,
}

impl DecoderModel {
    fn new(seed: u64) -> Self {
        let mut ps = ParamStore::new();
        let model = TinyDecoder::new(&mut ps, DecoderConfig::tiny(), seed);
        Self {
            model,
            ps: Arc::new(ps),
        }
    }
}

impl ModelForward for DecoderModel {
    fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let (rows, vocab) = (g.value(x).shape[0], self.model.config().vocab);
        let tokens: Vec<usize> = g.value(x).data.iter().map(|&t| t as usize).collect();
        let mut out = Vec::with_capacity(rows * vocab);
        for tok in tokens {
            let logits = self.model.forward_logits(g, &self.ps, &[tok]);
            out.extend_from_slice(&g.value(logits).data);
        }
        g.input(Tensor::from_vec(out, &[rows, vocab]))
    }

    fn decode(&self) -> Option<&dyn ModelDecode> {
        Some(self)
    }
}

impl ModelDecode for DecoderModel {
    fn new_state(&self) -> DecodeState {
        let mut pool = BufferPool::new();
        Box::new(self.model.new_caches(MAX_LEN, &mut pool))
    }

    fn step(&self, g: &mut Graph<'_>, input: &Tensor, state: &mut DecodeState) -> Tensor {
        let caches = state
            .downcast_mut::<Vec<KvCache>>()
            .expect("decode state is the layer KV caches");
        let tok = input.data[0] as usize;
        let logits = self.model.step_logits(g, &self.ps, tok, caches);
        g.value(logits).clone()
    }
}

fn decoder_loopback(engine_seed: u64, model_seed: u64) -> NetServer {
    let engine = EngineBuilder::new(
        OperatorPlan::new().with(
            NonLinearOp::Gelu,
            OpPlan::new(Method::GqaRm)
                .with_seed(engine_seed)
                .with_budget(0.05),
        ),
    )
    .build()
    .unwrap();
    let spec = ModelSpec::from_model("tiny-decoder", &[1], DecoderModel::new(model_seed));
    loopback(engine, spec)
}

fn token_input(tok: usize) -> Tensor {
    Tensor::from_vec(vec![tok as f32], &[1])
}

/// One direct models-level step — the bits every wire decode step must
/// reproduce.
fn direct_step_bits(
    session: &Session,
    dm: &DecoderModel,
    caches: &mut [KvCache],
    tok: usize,
) -> Vec<u32> {
    let mut g = Graph::with_mode(session, EvalMode::Inference, BufferPool::new());
    let logits = dm.model.step_logits(&mut g, &dm.ps, tok, caches);
    bits(g.value(logits))
}

#[test]
fn wire_decode_steps_match_the_direct_model_loop() {
    let tokens = [3usize, 1, 4, 1, 5, 9, 2, 6];
    let server = decoder_loopback(7, 11);
    let mut client = NetClient::connect(server.addr(), "decode").unwrap();
    let session_id = client.open_decode(0, 0).unwrap();

    // Identically-planned reference engine: the global LUT registry
    // hands both the same artifacts.
    let reference = DecoderModel::new(11);
    let ref_session = EngineBuilder::new(OperatorPlan::new().with(
        NonLinearOp::Gelu,
        OpPlan::new(Method::GqaRm).with_seed(7).with_budget(0.05),
    ))
    .build()
    .unwrap()
    .session();
    let mut ref_caches = reference.model.new_caches(MAX_LEN, &mut BufferPool::new());

    for (t, &tok) in tokens.iter().enumerate() {
        let got = client.decode_step(session_id, token_input(tok)).unwrap();
        assert_eq!(
            bits(&got),
            direct_step_bits(&ref_session, &reference, &mut ref_caches, tok),
            "wire decode step {t} diverges from the direct model loop"
        );
    }
}

/// Decode sessions are connection-scoped: an id from one connection
/// means nothing on another, and a dropped connection's session state
/// is released, never leaked into a worker.
#[test]
fn decode_sessions_scope_to_their_connection() {
    let server = decoder_loopback(3, 21);

    // First connection: open, step twice, then vanish abruptly.
    {
        let mut first = NetClient::connect(server.addr(), "first").unwrap();
        let sid = first.open_decode(0, 0).unwrap();
        first.decode_step(sid, token_input(5)).unwrap();
        first.decode_step(sid, token_input(2)).unwrap();
        // Drop: TCP close with the session open.
    }

    // Second connection: the first connection's id is unknown here, and
    // a fresh session replays a fresh sequence (fresh KV caches), not
    // the dead connection's prefix.
    let mut second = NetClient::connect(server.addr(), "second").unwrap();
    match second.decode_step(0, token_input(5)) {
        Err(NetError::Remote(RemoteError::UnknownSession(0))) => {}
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    let sid = second.open_decode(0, 0).unwrap();

    let reference = DecoderModel::new(21);
    let ref_session = EngineBuilder::new(OperatorPlan::new().with(
        NonLinearOp::Gelu,
        OpPlan::new(Method::GqaRm).with_seed(3).with_budget(0.05),
    ))
    .build()
    .unwrap()
    .session();
    let mut fresh = reference.model.new_caches(MAX_LEN, &mut BufferPool::new());
    let got = bits(&second.decode_step(sid, token_input(5)).unwrap());
    assert_eq!(
        got,
        direct_step_bits(&ref_session, &reference, &mut fresh, 5),
        "a fresh wire session must start from fresh KV caches"
    );
}

// ---------------------------------------------------------------------
// Typed errors and disconnect behavior
// ---------------------------------------------------------------------

/// Validation failures cross the wire typed, payloads intact.
#[test]
fn typed_errors_survive_the_wire() {
    let server = loopback(exact_engine(), mlp_spec());
    let mut client = NetClient::connect(server.addr(), "errors").unwrap();

    match client.infer(9, 0, Tensor::from_vec(vec![0.0; DIM], &[DIM])) {
        Err(NetError::Remote(RemoteError::UnknownTenant(9))) => {}
        other => panic!("expected UnknownTenant(9), got {other:?}"),
    }
    match client.infer(0, 7, Tensor::from_vec(vec![0.0; DIM], &[DIM])) {
        Err(NetError::Remote(RemoteError::UnknownModel(7))) => {}
        other => panic!("expected UnknownModel(7), got {other:?}"),
    }
    match client.infer(0, 0, Tensor::from_vec(vec![0.0; 3], &[3])) {
        Err(NetError::Remote(RemoteError::BadShape {
            model: 0,
            expected,
            got,
        })) => {
            assert_eq!((expected, got), (vec![DIM as u64], vec![3]));
        }
        other => panic!("expected BadShape, got {other:?}"),
    }
    match client.open_decode(0, 0) {
        Err(NetError::Remote(RemoteError::DecodeUnsupported(0))) => {}
        other => panic!("expected DecodeUnsupported, got {other:?}"),
    }
    // The connection survives typed errors — it is protocol errors that
    // close it.
    client
        .infer(0, 0, Tensor::from_vec(vec![0.5; DIM], &[DIM]))
        .unwrap();
}

/// Shared-queue backpressure propagates to the socket client as a typed
/// [`RemoteError::Rejected`] with the real depth and capacity.
#[test]
fn queue_rejection_reaches_the_client_typed() {
    // Zero workers, capacity 1: the first infer parks in the queue, the
    // second is rejected by admission control.
    let served = ServedBuilder::new(exact_engine())
        .with_model(mlp_spec())
        .with_config(ServedConfig {
            batch: BatchConfig {
                max_batch: 4,
                max_wait: 0,
                capacity: 1,
            },
            workers: 0,
            tenants: 4,
            ..ServedConfig::default()
        })
        .with_virtual_clock()
        .build();
    let server = NetServer::spawn(served, "127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.addr();

    let parked = std::thread::spawn(move || {
        let mut c = NetClient::connect(addr, "parked").unwrap();
        c.infer(0, 0, Tensor::from_vec(vec![0.1; DIM], &[DIM]))
    });
    // Deterministic ordering: wait until the first request is IN the
    // served queue before submitting the second.
    while server.served().stats().submitted < 1 {
        std::thread::yield_now();
    }
    let mut second = NetClient::connect(addr, "second").unwrap();
    match second.infer(1, 0, Tensor::from_vec(vec![0.2; DIM], &[DIM])) {
        Err(NetError::Remote(RemoteError::Rejected {
            depth: 1,
            capacity: 1,
        })) => {}
        other => panic!("expected Rejected{{1,1}}, got {other:?}"),
    }
    // Shutdown drains the parked request typed.
    drop(server);
    match parked.join().unwrap() {
        Err(NetError::Remote(RemoteError::ShuttingDown)) => {}
        other => panic!("expected ShuttingDown for the parked request, got {other:?}"),
    }
}

/// A client that fires a request and vanishes wedges nothing: the
/// server finishes the work, shrugs off the dead socket, and keeps
/// serving everyone else.
#[test]
fn mid_flight_disconnect_wedges_nothing() {
    let server = loopback(exact_engine(), mlp_spec());
    let spec = mlp_spec();
    let session = server.served().engine().session();
    let mut pool = BufferPool::new();

    {
        use gqa_net::{encode_request, write_frame, RequestFrame};
        use std::net::TcpStream;
        // Raw connection: send a valid Infer and close without reading
        // the response.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let frame = encode_request(&RequestFrame::Infer {
            tenant: 0,
            model: 0,
            input: Tensor::from_vec(vec![0.3; DIM], &[DIM]),
        });
        write_frame(&mut s, &frame).unwrap();
        // Drop: abrupt close with the response still in flight.
    }

    // The abandoned request still completes server-side, and a new
    // client gets exact service.
    while server.served().stats().completed < 1 {
        std::thread::yield_now();
    }
    let mut client = NetClient::connect(server.addr(), "alive").unwrap();
    let input = Tensor::from_vec(vec![0.7; DIM], &[DIM]);
    let want = reference(&session, &spec, &input, &mut pool);
    assert_eq!(bits(&client.infer(0, 0, input).unwrap()), want);
    assert_eq!(server.served().stats().completed, 2);
}
