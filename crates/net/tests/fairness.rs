//! Deterministic fairness and adaptive-deadline suites — all virtual
//! time, no sleeps, no tolerances.
//!
//! The centrepiece is the DRR starvation-freedom bound: a tenant whose
//! lane holds `p` items ahead of a given item is released within
//! `(floor(p / (quantum·w_t)) + 1) · Σ_u quantum·w_u` releases, no
//! matter how hard every other tenant floods. The suite pins that bound
//! exactly under an adversarial backlog, pins weighted throughput
//! shares over a sustained replay, and pins the live `max_wait` retune
//! hook ([`Served::set_max_wait`]) end to end on a virtual clock.

use gqa_net::{AdaptiveWait, FairAdmission, FairConfig};
use gqa_serve::{EngineBuilder, OperatorPlan};
use gqa_served::{
    generate_trace, BatchConfig, LoadGenConfig, ModelSpec, Request, ServedBuilder, ServedConfig,
};
use gqa_tensor::Tensor;

fn fair(weights: &[u64], quota: usize, quantum: u64) -> FairAdmission<u32> {
    FairAdmission::new(weights, FairConfig { quota, quantum })
}

/// The worst-case release position of an item at lane depth `p` for
/// tenant `t`: every full quantum run of every tenant can precede each
/// of the item's own quantum runs.
fn starvation_bound(weights: &[u64], quantum: u64, t: usize, p: u64) -> u64 {
    let per_visit: u64 = quantum * weights[t];
    let round: u64 = weights.iter().map(|w| quantum * w).sum();
    (p / per_visit + 1) * round
}

/// An adversary floods three heavy lanes to their quota; a light tenant
/// submits one item. The light item is released within the analytic
/// bound — and the bound is *independent of the flood depth*.
#[test]
fn light_tenant_release_is_bounded_under_flood() {
    let weights = [1u64, 1, 1, 1];
    let quantum = 4;
    let quota = 256;
    let mut f = fair(&weights, quota, quantum);

    // Heavy tenants 0..3 fill their lanes to quota BEFORE the light
    // tenant shows up — worst case for FIFO, best case for starvation.
    for heavy in 0..3 {
        for i in 0..quota as u32 {
            f.submit(heavy, heavy as u32 * 1000 + i, 0).unwrap();
        }
    }
    f.submit(3, 9999, 0).unwrap();

    let bound = starvation_bound(&weights, quantum, 3, 0);
    let mut released_at = None;
    for k in 1..=bound {
        let r = f.poll(k).unwrap();
        if r.tenant == 3 {
            released_at = Some(k);
            break;
        }
    }
    let released_at = released_at.expect("light tenant starved past the analytic bound");
    assert!(
        released_at <= bound,
        "released at {released_at}, bound {bound}"
    );
    // Tighter sanity: with equal weights the light item waits at most
    // one full round of everyone's quantum (it sits at lane depth 0).
    assert!(released_at <= weights.len() as u64 * quantum);
}

/// The bound holds at depth too: an item buried `p` deep in its own
/// lane still releases within the analytic bound while three heavy
/// tenants keep their lanes saturated the whole time.
#[test]
fn buried_item_release_is_bounded_under_sustained_flood() {
    let weights = [1u64, 1, 2];
    let quantum = 2;
    let quota = 64;
    let mut f = fair(&weights, quota, quantum);

    let p = 10u64; // our item's lane depth at submission
    for i in 0..p as u32 {
        f.submit(2, 100 + i, 0).unwrap();
    }
    f.submit(2, 777, 0).unwrap();

    let bound = starvation_bound(&weights, quantum, 2, p);
    let mut seen = false;
    for k in 1..=bound {
        // Adversary: keep the heavy lanes topped up at every step.
        for heavy in 0..2 {
            while f.lane_depth(heavy) < quota {
                if f.submit(heavy, 0, k).is_err() {
                    break;
                }
            }
        }
        if let Some(r) = f.poll(k) {
            if r.item == 777 {
                seen = true;
                break;
            }
        }
    }
    assert!(seen, "item at depth {p} starved past the bound {bound}");
}

/// Sustained weighted shares: over full rounds with all lanes saturated,
/// releases split exactly `quantum·w` per tenant per round — DRR's
/// throughput guarantee, not an approximation.
#[test]
fn sustained_shares_track_weights_exactly() {
    let weights = [4u64, 2, 1];
    let quantum = 2;
    let mut f = fair(&weights, 1024, quantum);
    let round: u64 = weights.iter().map(|w| quantum * w).sum();
    let rounds = 6u64;

    for (t, &w) in weights.iter().enumerate() {
        for i in 0..(quantum * w * rounds) as u32 {
            f.submit(t, i, 0).unwrap();
        }
    }
    let mut counts = [0u64; 3];
    for k in 0..round * rounds {
        let r = f.poll(k).expect("lanes sized to drain exactly");
        counts[r.tenant] += 1;
    }
    assert_eq!(
        counts,
        [
            quantum * weights[0] * rounds,
            quantum * weights[1] * rounds,
            quantum * weights[2] * rounds
        ],
        "shares must be exactly quantum-weighted"
    );
    assert_eq!(f.depth(), 0);
}

/// Replaying the seeded Zipf trace through the fair queue: the hottest
/// tenant's flood cannot push the coldest tenant's worst admission wait
/// (in releases) past the analytic bound.
#[test]
fn zipf_replay_keeps_cold_tenant_waits_bounded() {
    let tenants = 4;
    let weights = vec![1u64; tenants];
    let quantum = 4u64;
    let quota = 64;
    let trace = generate_trace(&LoadGenConfig {
        seed: 0xFA1,
        requests: 512,
        tenants,
        models: 1,
        skew: 1.3, // hard skew: tenant 0 dominates
        mean_gap: 0,
    });

    let mut f: FairAdmission<u32> = fair(&weights, quota, quantum);
    let mut worst_wait = vec![0u64; tenants];
    let mut clock = 0u64;
    let mut it = trace.iter().peekable();
    // Closed alternation: one arrival, one release per tick — a pump
    // that keeps up, while lanes still go deep under bursts.
    while it.peek().is_some() || f.depth() > 0 {
        if let Some(e) = it.next() {
            // Shed on quota like the server does; the trace is hot
            // enough that tenant 0 sheds, the cold tenants never do.
            let _ = f.submit(e.tenant, 0, clock);
        }
        if let Some(r) = f.poll(clock) {
            worst_wait[r.tenant] = worst_wait[r.tenant].max(r.waited);
        }
        clock += 1;
    }
    let bound = starvation_bound(&weights, quantum, tenants - 1, (quota - 1) as u64);
    assert!(
        worst_wait[tenants - 1] <= bound,
        "cold tenant worst wait {} exceeds bound {bound} (waits: {worst_wait:?})",
        worst_wait[tenants - 1]
    );
}

/// The bitwise-determinism contract of the fairness layer itself: the
/// same submissions at the same ticks release in the same order with
/// the same waits, run after run.
#[test]
fn fair_schedule_is_deterministic() {
    let run = || {
        let mut f = fair(&[2, 1], 32, 3);
        let mut out = Vec::new();
        for k in 0..64u64 {
            f.submit((k % 3 == 0) as usize, k as u32, k).ok();
            if let Some(r) = f.poll(k) {
                out.push((r.tenant, r.item, r.waited));
            }
        }
        out
    };
    assert_eq!(run(), run());
}

// ---------------------------------------------------------------------
// Adaptive max_wait — controller and live retune hook
// ---------------------------------------------------------------------

/// `suggest` scales with the observed gap: dense traffic drives the
/// deadline to the floor, sparse traffic to the SLO cap — exactly
/// `clamp(ceil(gap · (max_batch − 1)))` in between.
#[test]
fn adaptive_suggestion_is_the_clamped_fill_time() {
    let mut a = AdaptiveWait::new(1.0, 1, 100); // alpha 1: ewma = last gap
    a.observe(0);
    a.observe(4); // gap 4
    assert_eq!(a.suggest(8), 28, "4 ticks × 7 remaining slots");
    a.observe(4); // gap 0: dense burst
    assert_eq!(a.suggest(8), 1, "dense traffic floors at min_wait");
    a.observe(1000); // huge gap
    assert_eq!(a.suggest(8), 100, "sparse traffic caps at max_wait");
}

/// [`Served::set_max_wait`] retunes a LIVE virtual-clock server: a
/// request parked behind an unreachable deadline flushes the moment the
/// bound drops to zero — no clock movement, no resubmission.
#[test]
fn set_max_wait_flushes_parked_work_immediately() {
    let served = ServedBuilder::new(EngineBuilder::new(OperatorPlan::new()).build().unwrap())
        .with_model(ModelSpec::new("double", &[2], |g, x| g.scale(x, 2.0)))
        .with_config(ServedConfig {
            batch: BatchConfig {
                max_batch: 16,
                max_wait: 1_000_000,
                capacity: 8,
            },
            workers: 1,
            tenants: 1,
            ..ServedConfig::default()
        })
        .with_virtual_clock()
        .build();
    let mut ticket = served
        .submit(Request {
            tenant: 0,
            model: 0,
            input: Tensor::from_vec(vec![1.5, -2.0], &[2]),
        })
        .unwrap();
    // Parked: not size-ready (1 of 16) and the deadline is a million
    // ticks out on a clock that never moves.
    assert!(ticket
        .wait_timeout(std::time::Duration::from_millis(20))
        .is_none());

    let prev = served.set_max_wait(0);
    assert_eq!(prev, 1_000_000, "retune reports the previous bound");
    let out = ticket.wait().unwrap();
    assert_eq!(out.data, vec![3.0, -4.0]);
    assert_eq!(served.batch_config().max_wait, 0);
    assert_eq!(served.now(), 0, "the clock never moved");
}
