//! Weighted fair admission: a **pure, tick-driven** deficit-round-robin
//! state machine in front of the shared serving queue, plus the EWMA
//! arrival-rate tracker that adapts the coalescer's deadline bound.
//!
//! PR 8's `Served` has one shared bounded queue: a tenant that floods it
//! starves everyone behind the single `capacity`. [`FairAdmission`]
//! fixes that at the network front door — each tenant gets its own
//! bounded **lane** (quota'd, typed [`Rejected`] backpressure per
//! tenant) and a deficit-round-robin scheduler releases lane heads into
//! the shared queue in weight proportion, so a heavy tenant's backlog
//! can delay a light tenant by at most one full credit round, never by
//! the backlog's length.
//!
//! Like [`Coalescer`](gqa_served::Coalescer), the machine takes time as
//! an explicit `now` tick argument and has no clocks, threads, or locks
//! inside — `tests/fairness.rs` scripts exact schedules against it and
//! pins the starvation-freedom bound deterministically.
//!
//! **Starvation-freedom bound.** With per-visit credit `quantum × w_t`
//! and unit cost per request, a request at position `p` (0-based) in
//! tenant `t`'s lane is released after at most
//! `(floor(p / (quantum·w_t)) + 1) · Σ_u quantum·w_u` releases from the
//! moment it reaches the lane: every full rotation hands each active
//! tenant `u` exactly `quantum·w_u` releases, and `t` needs
//! `floor(p / (quantum·w_t)) + 1` of its own visits to reach position
//! `p`. The bound depends on the tenant's **own** lane depth (≤ its
//! quota) and the weight sum — never on another tenant's backlog.

use std::collections::VecDeque;

use gqa_served::{Rejected, TenantId};

/// Fair-admission policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FairConfig {
    /// Requests a tenant may hold in its admission lane before further
    /// submissions are rejected (the per-tenant quota). The
    /// starvation-freedom bound scales with this, so small quotas mean
    /// tight admission-latency bounds.
    pub quota: usize,
    /// Deficit credits granted per scheduling visit per unit weight —
    /// how many back-to-back requests a weight-1 tenant releases before
    /// the scheduler moves on. Larger quanta favor throughput (longer
    /// same-tenant runs coalesce better); smaller quanta favor
    /// interleaving fairness.
    pub quantum: u64,
}

impl Default for FairConfig {
    fn default() -> Self {
        Self {
            quota: 64,
            quantum: 4,
        }
    }
}

/// One queued item plus its arrival tick.
#[derive(Debug)]
struct Pending<T> {
    item: T,
    enqueued: u64,
}

/// One released request: the deficit-round-robin scheduler's output.
#[derive(Debug, PartialEq, Eq)]
pub struct Release<T> {
    /// The tenant whose lane this came from.
    pub tenant: TenantId,
    /// The released payload.
    pub item: T,
    /// The tick the item entered its lane.
    pub enqueued: u64,
    /// Admission wait in ticks (`now - enqueued` at release time).
    pub waited: u64,
}

/// The deficit-round-robin weighted fair queue.
///
/// State per tenant: a FIFO lane, a deficit counter, and membership in
/// the active rotation. [`FairAdmission::submit`] enqueues under the
/// lane quota; [`FairAdmission::poll`] releases the next request in DRR
/// order. Both are pure state transitions — drive them from a scripted
/// schedule to get exact, reproducible fairness properties.
#[derive(Debug)]
pub struct FairAdmission<T> {
    cfg: FairConfig,
    weights: Vec<u64>,
    lanes: Vec<VecDeque<Pending<T>>>,
    deficit: Vec<u64>,
    /// Round-robin rotation of tenants with non-empty lanes, front =
    /// next to serve.
    active: VecDeque<TenantId>,
    depth: usize,
}

impl<T> FairAdmission<T> {
    /// A fair queue over `weights.len()` tenants with the given per-
    /// tenant weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is zero, or the config's
    /// `quota`/`quantum` is zero — all configuration bugs.
    #[must_use]
    pub fn new(weights: &[u64], cfg: FairConfig) -> Self {
        assert!(!weights.is_empty(), "fair admission needs >= 1 tenant");
        assert!(
            weights.iter().all(|&w| w > 0),
            "tenant weights must be positive, got {weights:?}"
        );
        assert!(cfg.quota > 0, "quota must be positive");
        assert!(cfg.quantum > 0, "quantum must be positive");
        Self {
            cfg,
            weights: weights.to_vec(),
            lanes: weights.iter().map(|_| VecDeque::new()).collect(),
            deficit: vec![0; weights.len()],
            active: VecDeque::new(),
            depth: 0,
        }
    }

    /// The configured policy.
    #[must_use]
    pub fn config(&self) -> FairConfig {
        self.cfg
    }

    /// The per-tenant weights.
    #[must_use]
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Requests queued across all lanes.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Requests queued in `tenant`'s lane.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    #[must_use]
    pub fn lane_depth(&self, tenant: TenantId) -> usize {
        self.lanes[tenant].len()
    }

    /// Admits `item` into `tenant`'s lane at tick `now`, or rejects it
    /// when the lane is at quota.
    ///
    /// # Errors
    ///
    /// A typed [`Rejected`] carrying the lane's depth and the quota;
    /// the item comes back untouched — per-tenant backpressure that a
    /// flooding tenant feels while everyone else's lanes stay open.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range — the server validates tenant
    /// ids before they reach the fair queue.
    pub fn submit(&mut self, tenant: TenantId, item: T, now: u64) -> Result<(), (Rejected, T)> {
        let lane = &mut self.lanes[tenant];
        if lane.len() >= self.cfg.quota {
            return Err((
                Rejected {
                    depth: lane.len(),
                    capacity: self.cfg.quota,
                },
                item,
            ));
        }
        let was_empty = lane.is_empty();
        lane.push_back(Pending {
            item,
            enqueued: now,
        });
        self.depth += 1;
        if was_empty {
            // A newly active lane joins the BACK of the rotation with an
            // empty deficit: it cannot jump ahead of tenants already
            // waiting for their turn.
            self.active.push_back(tenant);
        }
        Ok(())
    }

    /// Releases the next request in deficit-round-robin order at tick
    /// `now`, or `None` when every lane is empty.
    ///
    /// The front lane of the rotation is topped up with
    /// `quantum × weight` credits when its deficit is spent; each
    /// release costs one credit. A lane that spends its credits (or
    /// empties) rotates to the back, which is what bounds any tenant's
    /// wait by one full credit round regardless of other lanes' depths.
    pub fn poll(&mut self, now: u64) -> Option<Release<T>> {
        let &tenant = self.active.front()?;
        debug_assert!(
            !self.lanes[tenant].is_empty(),
            "active rotation only holds non-empty lanes"
        );
        if self.deficit[tenant] == 0 {
            self.deficit[tenant] = self.cfg.quantum.saturating_mul(self.weights[tenant]);
        }
        self.deficit[tenant] -= 1;
        let p = self.lanes[tenant].pop_front().expect("non-empty lane");
        self.depth -= 1;
        if self.lanes[tenant].is_empty() {
            // An emptied lane leaves the rotation and forfeits residual
            // credit — DRR's anti-banking rule, so an idle tenant cannot
            // save up a burst allowance.
            self.active.pop_front();
            self.deficit[tenant] = 0;
        } else if self.deficit[tenant] == 0 {
            let t = self.active.pop_front().expect("front exists");
            self.active.push_back(t);
        }
        Some(Release {
            tenant,
            item: p.item,
            enqueued: p.enqueued,
            waited: now.saturating_sub(p.enqueued),
        })
    }

    /// Releases everything, lane by lane in tenant order, ignoring the
    /// rotation — the shutdown drain, so no admitted request is dropped
    /// without a typed answer.
    pub fn drain(&mut self) -> Vec<Release<T>> {
        let mut out = Vec::with_capacity(self.depth);
        for (tenant, lane) in self.lanes.iter_mut().enumerate() {
            for p in lane.drain(..) {
                out.push(Release {
                    tenant,
                    item: p.item,
                    enqueued: p.enqueued,
                    waited: 0,
                });
            }
        }
        self.depth = 0;
        self.active.clear();
        self.deficit.iter_mut().for_each(|d| *d = 0);
        out
    }
}

/// EWMA arrival-rate tracker driving the adaptive coalescing deadline.
///
/// Observes request arrival ticks and maintains an exponentially
/// weighted moving average of the inter-arrival gap. The suggested
/// `max_wait` is the time a `max_batch`-wide batch plausibly takes to
/// form at the observed rate — `(max_batch - 1) × ewma_gap` — clamped
/// to `[min_wait, max_wait]`:
///
/// * **Dense traffic** (gap → 0): suggestion clamps to `min_wait`.
///   Batches fill by size before any deadline matters; a long deadline
///   would only add tail latency to stragglers.
/// * **Sparse traffic** (gap large): suggestion clamps to `max_wait`,
///   the latency SLO — never hold a lone request longer than the cap
///   waiting for company that is not coming.
///
/// Pure and deterministic: same observation sequence, same suggestions.
#[derive(Debug, Clone)]
pub struct AdaptiveWait {
    alpha: f64,
    ewma_gap: Option<f64>,
    last_arrival: Option<u64>,
    min_wait: u64,
    max_wait: u64,
}

impl AdaptiveWait {
    /// A tracker smoothing with factor `alpha` (weight of the newest
    /// gap, in `(0, 1]`) and clamping suggestions to
    /// `[min_wait, max_wait]` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or `min_wait > max_wait`.
    #[must_use]
    pub fn new(alpha: f64, min_wait: u64, max_wait: u64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} not in (0, 1]");
        assert!(
            min_wait <= max_wait,
            "min_wait {min_wait} > max_wait {max_wait}"
        );
        Self {
            alpha,
            ewma_gap: None,
            last_arrival: None,
            min_wait,
            max_wait,
        }
    }

    /// Records one arrival at tick `now`. Out-of-order ticks (a wall
    /// clock read racing another thread's) count as gap 0 — densest
    /// possible, which only ever shrinks the suggestion.
    pub fn observe(&mut self, now: u64) {
        if let Some(last) = self.last_arrival {
            let gap = now.saturating_sub(last) as f64;
            self.ewma_gap = Some(match self.ewma_gap {
                Some(e) => e + self.alpha * (gap - e),
                None => gap,
            });
        }
        self.last_arrival = Some(now);
    }

    /// The smoothed inter-arrival gap in ticks (`None` before two
    /// arrivals).
    #[must_use]
    pub fn ewma_gap(&self) -> Option<f64> {
        self.ewma_gap
    }

    /// The suggested `max_wait` for a `max_batch`-wide coalescer:
    /// `(max_batch - 1) × ewma_gap`, clamped to the configured bounds.
    /// Before any gap has been observed, suggests `max_wait` (the
    /// conservative cap).
    #[must_use]
    pub fn suggest(&self, max_batch: usize) -> u64 {
        let Some(gap) = self.ewma_gap else {
            return self.max_wait;
        };
        let fill = gap * max_batch.saturating_sub(1) as f64;
        // Ceil, then clamp: a fractional tick of fill time still needs a
        // whole tick of deadline.
        (fill.ceil() as u64).clamp(self.min_wait, self.max_wait)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fair(weights: &[u64], quota: usize, quantum: u64) -> FairAdmission<u32> {
        FairAdmission::new(weights, FairConfig { quota, quantum })
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut f = fair(&[1], 8, 4);
        for i in 0..5 {
            f.submit(0, i, u64::from(i)).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| f.poll(10).map(|r| r.item)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(f.depth(), 0);
    }

    #[test]
    fn equal_weights_interleave_in_quantum_runs() {
        let mut f = fair(&[1, 1], 64, 2);
        for i in 0..6 {
            f.submit(0, i, 0).unwrap();
            f.submit(1, 100 + i, 0).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| f.poll(0).map(|r| r.item)).collect();
        // Tenant 0 activated first: runs of `quantum = 2` alternate.
        assert_eq!(order, vec![0, 1, 100, 101, 2, 3, 102, 103, 4, 5, 104, 105]);
    }

    #[test]
    fn weights_set_the_release_proportion() {
        let mut f = fair(&[3, 1], 256, 2);
        for i in 0..24 {
            f.submit(0, i, 0).unwrap();
            f.submit(1, 100 + i, 0).unwrap();
        }
        // One full rotation: 6 from tenant 0 (quantum 2 × weight 3), then
        // 2 from tenant 1.
        let first_round: Vec<u32> = (0..8).map(|_| f.poll(0).unwrap().item).collect();
        assert_eq!(first_round, vec![0, 1, 2, 3, 4, 5, 100, 101]);
    }

    #[test]
    fn quota_rejects_with_typed_depth_and_capacity() {
        let mut f = fair(&[1, 1], 2, 4);
        f.submit(0, 1, 0).unwrap();
        f.submit(0, 2, 0).unwrap();
        let (rej, item) = f.submit(0, 3, 0).unwrap_err();
        assert_eq!((rej.depth, rej.capacity, item), (2, 2, 3));
        // The OTHER tenant's lane is unaffected — per-tenant quota, not a
        // shared bound.
        f.submit(1, 9, 0).unwrap();
        assert_eq!(f.lane_depth(0), 2);
        assert_eq!(f.lane_depth(1), 1);
    }

    #[test]
    fn emptied_lane_forfeits_residual_credit() {
        let mut f = fair(&[1, 1], 8, 4);
        f.submit(0, 1, 0).unwrap();
        f.submit(1, 2, 0).unwrap();
        assert_eq!(f.poll(0).unwrap().item, 1);
        // Tenant 0's lane emptied with 3 credits left; re-submitting must
        // NOT let it bank them into a 7-long run.
        for i in 10..18 {
            f.submit(0, i, 0).unwrap();
        }
        // Tenant 1 is at the front of the rotation now.
        assert_eq!(f.poll(0).unwrap().tenant, 1);
        let next: Vec<u32> = (0..4).map(|_| f.poll(0).unwrap().item).collect();
        assert_eq!(
            next,
            vec![10, 11, 12, 13],
            "fresh quantum, not banked credit"
        );
        assert_eq!(
            f.poll(0).unwrap().item,
            14,
            "still tenant 0: no one else queued"
        );
    }

    #[test]
    fn release_reports_admission_wait_in_ticks() {
        let mut f = fair(&[1], 8, 4);
        f.submit(0, 7, 3).unwrap();
        let r = f.poll(10).unwrap();
        assert_eq!((r.enqueued, r.waited), (3, 7));
    }

    #[test]
    fn drain_returns_everything_and_resets() {
        let mut f = fair(&[1, 1], 8, 4);
        f.submit(0, 1, 0).unwrap();
        f.submit(1, 2, 0).unwrap();
        f.submit(1, 3, 0).unwrap();
        let drained: Vec<(usize, u32)> =
            f.drain().into_iter().map(|r| (r.tenant, r.item)).collect();
        assert_eq!(drained, vec![(0, 1), (1, 2), (1, 3)]);
        assert_eq!(f.depth(), 0);
        assert!(f.poll(0).is_none());
    }

    #[test]
    fn adaptive_wait_tracks_dense_and_sparse_regimes() {
        let mut a = AdaptiveWait::new(0.5, 1, 64);
        assert_eq!(a.suggest(16), 64, "no observations: conservative cap");
        // Dense: back-to-back arrivals every tick.
        for now in 0..32 {
            a.observe(now);
        }
        assert!(a.ewma_gap().unwrap() <= 1.0 + 1e-9);
        assert_eq!(a.suggest(16), 15, "15 gaps of ~1 tick fill a 16-batch");
        assert_eq!(a.suggest(2), 1, "tiny batch clamps to min");
        // Sparse: arrivals 1000 ticks apart pull the EWMA up fast.
        for k in 1..=8u64 {
            a.observe(32 + k * 1000);
        }
        assert_eq!(a.suggest(16), 64, "sparse traffic clamps to the cap");
    }

    #[test]
    fn adaptive_wait_is_deterministic() {
        let run = || {
            let mut a = AdaptiveWait::new(0.25, 0, 100);
            for now in [0u64, 3, 4, 10, 11, 11, 30, 31] {
                a.observe(now);
            }
            (a.ewma_gap().unwrap().to_bits(), a.suggest(8))
        };
        assert_eq!(run(), run());
    }
}
