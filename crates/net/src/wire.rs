//! The wire protocol: a length-prefixed, versioned binary framing over
//! any byte stream, with pure encode/decode functions.
//!
//! Every frame on the wire is
//!
//! ```text
//! ┌────────────┬─────────────────────────────────────────┐
//! │ len: u32LE │ payload (len bytes, <= MAX_FRAME_LEN)   │
//! └────────────┴─────────────────────────────────────────┘
//! payload := version: u8 (= PROTOCOL_VERSION)
//!            opcode:  u8
//!            body     (opcode-specific, fixed field order, LE)
//! ```
//!
//! The codec is **pure** — [`decode_request`] / [`decode_response`] are
//! total functions from byte slices to typed frames or typed
//! [`WireError`]s, and never panic on hostile input. That is what the
//! mutated-frame corpus in `tests/protocol.rs` exercises: truncations,
//! oversizes, bad versions, unknown opcodes, and random byte flips all
//! come back as errors, not as worker panics.
//!
//! Tensors travel as raw IEEE-754 bit patterns (`f32::to_bits`, LE), so
//! a round trip through the socket is `to_bits`-identical by
//! construction — the transport can never perturb the serving layer's
//! bitwise contracts.

use gqa_served::{Rejected, ServedError};
use gqa_tensor::Tensor;

/// The protocol version this build speaks. A frame carrying any other
/// version byte is rejected with [`WireError::BadVersion`] before its
/// body is looked at.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on one frame's payload length. A `len` prefix past this
/// is [`WireError::Oversized`] — the connection handler drops the peer
/// instead of allocating attacker-controlled gigabytes.
pub const MAX_FRAME_LEN: usize = 1 << 24; // 16 MiB

/// Upper bound on a wire tensor's rank.
pub const MAX_TENSOR_DIMS: usize = 8;

/// Request opcodes (client → server).
mod op {
    pub const HELLO: u8 = 0x01;
    pub const INFER: u8 = 0x02;
    pub const DECODE_OPEN: u8 = 0x03;
    pub const DECODE_STEP: u8 = 0x04;
    pub const STATS: u8 = 0x05;
    pub const HELLO_OK: u8 = 0x81;
    pub const OUTPUT: u8 = 0x82;
    pub const DECODE_OPENED: u8 = 0x83;
    pub const STATS_TEXT: u8 = 0x84;
    pub const ERROR: u8 = 0xFF;
}

/// Error codes inside an `Error` response frame.
mod ec {
    pub const REJECTED: u8 = 1;
    pub const UNKNOWN_MODEL: u8 = 2;
    pub const UNKNOWN_TENANT: u8 = 3;
    pub const BAD_SHAPE: u8 = 4;
    pub const DECODE_UNSUPPORTED: u8 = 5;
    pub const STEP_PENDING: u8 = 6;
    pub const SHUTTING_DOWN: u8 = 7;
    pub const QUOTA_EXCEEDED: u8 = 8;
    pub const UNKNOWN_SESSION: u8 = 9;
    pub const PROTOCOL: u8 = 10;
}

/// A malformed or unspeakable frame, detected by the pure codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field it promised.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually remaining.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The advertised payload length.
        len: usize,
        /// The configured bound.
        max: usize,
    },
    /// The frame speaks a protocol version this build does not.
    BadVersion(u8),
    /// The opcode byte names no known frame type.
    BadOpcode(u8),
    /// A structurally invalid field (context in the message).
    Malformed(&'static str),
    /// Well-formed fields followed by unconsumed bytes — a framing bug
    /// on the peer, rejected rather than silently ignored.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: field needs {needed} bytes, {got} left")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes > max {max}")
            }
            WireError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (speaking {PROTOCOL_VERSION})"
                )
            }
            WireError::BadOpcode(o) => write!(f, "unknown opcode {o:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame body")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A typed server-side failure carried in an `Error` response frame —
/// the wire mirror of [`ServedError`] plus the admission- and
/// protocol-level failures only the network layer can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// Shared-queue backpressure (mirrors [`ServedError::Rejected`]).
    Rejected {
        /// Requests queued at rejection.
        depth: u64,
        /// The configured queue bound.
        capacity: u64,
    },
    /// No such model index.
    UnknownModel(u64),
    /// No such tenant index.
    UnknownTenant(u64),
    /// Input shape does not match the model's row shape.
    BadShape {
        /// The model whose contract was violated.
        model: u64,
        /// The model's declared per-request shape.
        expected: Vec<u64>,
        /// The shape actually submitted.
        got: Vec<u64>,
    },
    /// The model has no incremental-decode entry point.
    DecodeUnsupported(u64),
    /// A decode step is already in flight for the session.
    StepPending,
    /// The server is shutting down.
    ShuttingDown,
    /// Per-tenant fair-admission quota exhausted — the WFQ layer's own
    /// backpressure, distinct from shared-queue [`RemoteError::Rejected`].
    QuotaExceeded {
        /// Requests this tenant has queued in its admission lane.
        queued: u64,
        /// The tenant's configured quota.
        quota: u64,
    },
    /// A `DecodeStep` named a session id this connection never opened.
    UnknownSession(u64),
    /// The server could not parse the request frame; the message echoes
    /// the [`WireError`] and the connection closes after this reply.
    Protocol(String),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Rejected { depth, capacity } => {
                write!(f, "rejected: admission queue full ({depth}/{capacity})")
            }
            RemoteError::UnknownModel(m) => write!(f, "unknown model id {m}"),
            RemoteError::UnknownTenant(t) => write!(f, "unknown tenant id {t}"),
            RemoteError::BadShape {
                model,
                expected,
                got,
            } => write!(
                f,
                "model {model} expects per-request shape {expected:?}, got {got:?}"
            ),
            RemoteError::DecodeUnsupported(m) => {
                write!(f, "model {m} does not support incremental decode")
            }
            RemoteError::StepPending => write!(f, "a decode step is already in flight"),
            RemoteError::ShuttingDown => write!(f, "server is shutting down"),
            RemoteError::QuotaExceeded { queued, quota } => {
                write!(f, "tenant admission quota exhausted ({queued}/{quota})")
            }
            RemoteError::UnknownSession(s) => write!(f, "unknown decode session {s}"),
            RemoteError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<&ServedError> for RemoteError {
    fn from(e: &ServedError) -> Self {
        match e {
            ServedError::Rejected(Rejected { depth, capacity }) => RemoteError::Rejected {
                depth: *depth as u64,
                capacity: *capacity as u64,
            },
            ServedError::UnknownModel(m) => RemoteError::UnknownModel(*m as u64),
            ServedError::UnknownTenant(t) => RemoteError::UnknownTenant(*t as u64),
            ServedError::BadShape {
                model,
                expected,
                got,
            } => RemoteError::BadShape {
                model: *model as u64,
                expected: expected.iter().map(|&d| d as u64).collect(),
                got: got.iter().map(|&d| d as u64).collect(),
            },
            ServedError::DecodeUnsupported(m) => RemoteError::DecodeUnsupported(*m as u64),
            ServedError::StepPending => RemoteError::StepPending,
            ServedError::ShuttingDown => RemoteError::ShuttingDown,
        }
    }
}

/// A client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestFrame {
    /// Version/feature handshake; must be the first frame on a
    /// connection.
    Hello {
        /// Free-form client identification (logs only).
        client: String,
    },
    /// One inference request: forward `input` through `model` as
    /// `tenant`.
    Infer {
        /// Submitting tenant.
        tenant: u64,
        /// Target model.
        model: u64,
        /// The per-request input row.
        input: Tensor,
    },
    /// Opens a KV-cached decode session.
    DecodeOpen {
        /// Owning tenant.
        tenant: u64,
        /// Decoding model.
        model: u64,
    },
    /// One decode step in a previously opened session.
    DecodeStep {
        /// Connection-scoped session id from `DecodeOpened`.
        session: u64,
        /// The step's input row.
        input: Tensor,
    },
    /// Requests a Prometheus-text metrics snapshot.
    Stats,
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseFrame {
    /// Handshake accepted.
    HelloOk {
        /// The server's protocol version.
        version: u8,
        /// Registered model count.
        models: u64,
        /// Configured tenant-space size.
        tenants: u64,
    },
    /// The forward's (or decode step's) output row.
    Output {
        /// The response tensor, bit-exact.
        output: Tensor,
    },
    /// A decode session is open.
    DecodeOpened {
        /// Connection-scoped session id for `DecodeStep`.
        session: u64,
    },
    /// The Prometheus text export.
    StatsText {
        /// UTF-8 metrics body.
        text: String,
    },
    /// A typed failure.
    Error(RemoteError),
}

// ---------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                got: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed(what))
    }

    /// Rejects unconsumed bytes — every decoder's final step.
    fn done(&self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            Err(WireError::TrailingBytes {
                extra: self.remaining(),
            })
        } else {
            Ok(())
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    put_u16(out, len as u16);
    out.extend_from_slice(&bytes[..len]);
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    out.push(t.shape.len() as u8);
    for &d in &t.shape {
        put_u32(out, d as u32);
    }
    for &v in &t.data {
        put_u32(out, v.to_bits());
    }
}

fn read_tensor(r: &mut Reader<'_>) -> Result<Tensor, WireError> {
    let ndim = r.u8()? as usize;
    if ndim == 0 || ndim > MAX_TENSOR_DIMS {
        return Err(WireError::Malformed("tensor rank out of range"));
    }
    let mut shape = Vec::with_capacity(ndim);
    let mut len = 1usize;
    for _ in 0..ndim {
        let d = r.u32()? as usize;
        if d == 0 {
            return Err(WireError::Malformed("zero tensor dimension"));
        }
        len = len
            .checked_mul(d)
            .filter(|&n| n <= MAX_FRAME_LEN / 4)
            .ok_or(WireError::Malformed("tensor element count overflows frame"))?;
        shape.push(d);
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(f32::from_bits(r.u32()?));
    }
    Ok(Tensor::from_vec(data, &shape))
}

fn read_shape_u64(r: &mut Reader<'_>) -> Result<Vec<u64>, WireError> {
    let ndim = r.u8()? as usize;
    if ndim > MAX_TENSOR_DIMS {
        return Err(WireError::Malformed("shape rank out of range"));
    }
    (0..ndim).map(|_| r.u64()).collect()
}

fn put_shape_u64(out: &mut Vec<u8>, shape: &[u64]) {
    out.push(shape.len().min(MAX_TENSOR_DIMS) as u8);
    for &d in shape.iter().take(MAX_TENSOR_DIMS) {
        put_u64(out, d);
    }
}

fn header(opcode: u8) -> Vec<u8> {
    vec![PROTOCOL_VERSION, opcode]
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

/// Encodes a request frame payload (version + opcode + body, no length
/// prefix — [`write_frame`] adds it).
#[must_use]
pub fn encode_request(frame: &RequestFrame) -> Vec<u8> {
    match frame {
        RequestFrame::Hello { client } => {
            let mut out = header(op::HELLO);
            put_string(&mut out, client);
            out
        }
        RequestFrame::Infer {
            tenant,
            model,
            input,
        } => {
            let mut out = header(op::INFER);
            put_u64(&mut out, *tenant);
            put_u64(&mut out, *model);
            put_tensor(&mut out, input);
            out
        }
        RequestFrame::DecodeOpen { tenant, model } => {
            let mut out = header(op::DECODE_OPEN);
            put_u64(&mut out, *tenant);
            put_u64(&mut out, *model);
            out
        }
        RequestFrame::DecodeStep { session, input } => {
            let mut out = header(op::DECODE_STEP);
            put_u64(&mut out, *session);
            put_tensor(&mut out, input);
            out
        }
        RequestFrame::Stats => header(op::STATS),
    }
}

/// Decodes a request frame payload.
///
/// # Errors
///
/// Any [`WireError`]: version/opcode checks happen before the body is
/// parsed; the body parse is total (no panics on hostile bytes) and
/// rejects trailing garbage.
pub fn decode_request(payload: &[u8]) -> Result<RequestFrame, WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let opcode = r.u8()?;
    let frame = match opcode {
        op::HELLO => RequestFrame::Hello {
            client: r.string("hello client name not utf-8")?,
        },
        op::INFER => RequestFrame::Infer {
            tenant: r.u64()?,
            model: r.u64()?,
            input: read_tensor(&mut r)?,
        },
        op::DECODE_OPEN => RequestFrame::DecodeOpen {
            tenant: r.u64()?,
            model: r.u64()?,
        },
        op::DECODE_STEP => RequestFrame::DecodeStep {
            session: r.u64()?,
            input: read_tensor(&mut r)?,
        },
        op::STATS => RequestFrame::Stats,
        other => return Err(WireError::BadOpcode(other)),
    };
    r.done()?;
    Ok(frame)
}

/// Encodes a response frame payload.
#[must_use]
pub fn encode_response(frame: &ResponseFrame) -> Vec<u8> {
    match frame {
        ResponseFrame::HelloOk {
            version,
            models,
            tenants,
        } => {
            let mut out = header(op::HELLO_OK);
            out.push(*version);
            put_u64(&mut out, *models);
            put_u64(&mut out, *tenants);
            out
        }
        ResponseFrame::Output { output } => {
            let mut out = header(op::OUTPUT);
            put_tensor(&mut out, output);
            out
        }
        ResponseFrame::DecodeOpened { session } => {
            let mut out = header(op::DECODE_OPENED);
            put_u64(&mut out, *session);
            out
        }
        ResponseFrame::StatsText { text } => {
            let mut out = header(op::STATS_TEXT);
            let bytes = text.as_bytes();
            let len = bytes.len().min(MAX_FRAME_LEN - 8) as u32;
            put_u32(&mut out, len);
            out.extend_from_slice(&bytes[..len as usize]);
            out
        }
        ResponseFrame::Error(e) => {
            let mut out = header(op::ERROR);
            match e {
                RemoteError::Rejected { depth, capacity } => {
                    out.push(ec::REJECTED);
                    put_u64(&mut out, *depth);
                    put_u64(&mut out, *capacity);
                }
                RemoteError::UnknownModel(m) => {
                    out.push(ec::UNKNOWN_MODEL);
                    put_u64(&mut out, *m);
                }
                RemoteError::UnknownTenant(t) => {
                    out.push(ec::UNKNOWN_TENANT);
                    put_u64(&mut out, *t);
                }
                RemoteError::BadShape {
                    model,
                    expected,
                    got,
                } => {
                    out.push(ec::BAD_SHAPE);
                    put_u64(&mut out, *model);
                    put_shape_u64(&mut out, expected);
                    put_shape_u64(&mut out, got);
                }
                RemoteError::DecodeUnsupported(m) => {
                    out.push(ec::DECODE_UNSUPPORTED);
                    put_u64(&mut out, *m);
                }
                RemoteError::StepPending => out.push(ec::STEP_PENDING),
                RemoteError::ShuttingDown => out.push(ec::SHUTTING_DOWN),
                RemoteError::QuotaExceeded { queued, quota } => {
                    out.push(ec::QUOTA_EXCEEDED);
                    put_u64(&mut out, *queued);
                    put_u64(&mut out, *quota);
                }
                RemoteError::UnknownSession(s) => {
                    out.push(ec::UNKNOWN_SESSION);
                    put_u64(&mut out, *s);
                }
                RemoteError::Protocol(msg) => {
                    out.push(ec::PROTOCOL);
                    put_string(&mut out, msg);
                }
            }
            out
        }
    }
}

/// Decodes a response frame payload.
///
/// # Errors
///
/// Any [`WireError`] — same totality guarantees as [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<ResponseFrame, WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let opcode = r.u8()?;
    let frame = match opcode {
        op::HELLO_OK => ResponseFrame::HelloOk {
            version: r.u8()?,
            models: r.u64()?,
            tenants: r.u64()?,
        },
        op::OUTPUT => ResponseFrame::Output {
            output: read_tensor(&mut r)?,
        },
        op::DECODE_OPENED => ResponseFrame::DecodeOpened { session: r.u64()? },
        op::STATS_TEXT => {
            let len = r.u32()? as usize;
            let bytes = r.bytes(len)?;
            ResponseFrame::StatsText {
                text: String::from_utf8(bytes.to_vec())
                    .map_err(|_| WireError::Malformed("stats text not utf-8"))?,
            }
        }
        op::ERROR => {
            let code = r.u8()?;
            let e = match code {
                ec::REJECTED => RemoteError::Rejected {
                    depth: r.u64()?,
                    capacity: r.u64()?,
                },
                ec::UNKNOWN_MODEL => RemoteError::UnknownModel(r.u64()?),
                ec::UNKNOWN_TENANT => RemoteError::UnknownTenant(r.u64()?),
                ec::BAD_SHAPE => RemoteError::BadShape {
                    model: r.u64()?,
                    expected: read_shape_u64(&mut r)?,
                    got: read_shape_u64(&mut r)?,
                },
                ec::DECODE_UNSUPPORTED => RemoteError::DecodeUnsupported(r.u64()?),
                ec::STEP_PENDING => RemoteError::StepPending,
                ec::SHUTTING_DOWN => RemoteError::ShuttingDown,
                ec::QUOTA_EXCEEDED => RemoteError::QuotaExceeded {
                    queued: r.u64()?,
                    quota: r.u64()?,
                },
                ec::UNKNOWN_SESSION => RemoteError::UnknownSession(r.u64()?),
                ec::PROTOCOL => RemoteError::Protocol(r.string("protocol message not utf-8")?),
                _ => return Err(WireError::Malformed("unknown error code")),
            };
            ResponseFrame::Error(e)
        }
        other => return Err(WireError::BadOpcode(other)),
    };
    r.done()?;
    Ok(frame)
}

// ---------------------------------------------------------------------
// Framed stream I/O
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying `io::Error`; callers treat a failed write
/// as a dead peer.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — encoders never
/// produce such payloads, so this is a programming error, not a runtime
/// state.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "frame payload {} exceeds MAX_FRAME_LEN",
        payload.len()
    );
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Outcome of [`read_frame`].
#[derive(Debug)]
pub enum FrameRead {
    /// A complete payload.
    Frame(Vec<u8>),
    /// Clean EOF **at a frame boundary** — the peer hung up politely.
    Eof,
    /// The length prefix violated [`MAX_FRAME_LEN`]; nothing was
    /// consumed past it, and the stream is unsynchronized — close it.
    Oversized(WireError),
}

/// Reads one length-prefixed frame.
///
/// EOF in the **middle** of a frame (after a partial length prefix or a
/// partial payload) is an `UnexpectedEof` I/O error — the abrupt-
/// disconnect case, distinct from [`FrameRead::Eof`].
///
/// # Errors
///
/// Propagates the underlying `io::Error` (including the read timeout
/// the server uses to poll its shutdown flag, which surfaces as
/// `WouldBlock`/`TimedOut`).
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    // A clean EOF on the FIRST byte of the prefix is a polite hangup.
    match r.read(&mut len_buf[..1])? {
        0 => return Ok(FrameRead::Eof),
        1 => {}
        _ => unreachable!("read into 1-byte buffer"),
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Ok(FrameRead::Oversized(WireError::Oversized {
            len,
            max: MAX_FRAME_LEN,
        }));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(FrameRead::Frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(v: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), shape)
    }

    #[test]
    fn request_frames_round_trip() {
        let frames = [
            RequestFrame::Hello {
                client: "bench-client/1".into(),
            },
            RequestFrame::Infer {
                tenant: 3,
                model: 1,
                input: tensor(&[1.0, -0.0, f32::NAN.copysign(1.0), 2.5e-40], &[2, 2]),
            },
            RequestFrame::DecodeOpen {
                tenant: 0,
                model: 2,
            },
            RequestFrame::DecodeStep {
                session: 7,
                input: tensor(&[0.25; 6], &[6]),
            },
            RequestFrame::Stats,
        ];
        for f in &frames {
            let enc = encode_request(f);
            let dec = decode_request(&enc).expect("round trip");
            // Tensors compare by bits, not PartialEq (NaN payloads).
            match (&dec, f) {
                (RequestFrame::Infer { input: a, .. }, RequestFrame::Infer { input: b, .. })
                | (
                    RequestFrame::DecodeStep { input: a, .. },
                    RequestFrame::DecodeStep { input: b, .. },
                ) => {
                    assert_eq!(a.shape, b.shape);
                    let bits = |t: &Tensor| t.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(a), bits(b), "tensor bits must survive the wire");
                }
                _ => assert_eq!(&dec, f),
            }
        }
    }

    #[test]
    fn response_frames_round_trip() {
        let frames = [
            ResponseFrame::HelloOk {
                version: PROTOCOL_VERSION,
                models: 2,
                tenants: 8,
            },
            ResponseFrame::Output {
                output: tensor(&[9.75, -3.5], &[2]),
            },
            ResponseFrame::DecodeOpened { session: 42 },
            ResponseFrame::StatsText {
                text: "a_count 3\n".into(),
            },
            ResponseFrame::Error(RemoteError::Rejected {
                depth: 128,
                capacity: 128,
            }),
            ResponseFrame::Error(RemoteError::BadShape {
                model: 1,
                expected: vec![4, 4],
                got: vec![16],
            }),
            ResponseFrame::Error(RemoteError::QuotaExceeded {
                queued: 32,
                quota: 32,
            }),
            ResponseFrame::Error(RemoteError::Protocol("trailing bytes".into())),
        ];
        for f in &frames {
            assert_eq!(&decode_response(&encode_request_like(f)).unwrap(), f);
        }
    }

    // encode_response, named so the borrow in the loop reads naturally.
    fn encode_request_like(f: &ResponseFrame) -> Vec<u8> {
        encode_response(f)
    }

    #[test]
    fn bad_version_and_opcode_are_typed() {
        let mut enc = encode_request(&RequestFrame::Stats);
        enc[0] = 9;
        assert_eq!(decode_request(&enc), Err(WireError::BadVersion(9)));
        let mut enc = encode_request(&RequestFrame::Stats);
        enc[1] = 0x77;
        assert_eq!(decode_request(&enc), Err(WireError::BadOpcode(0x77)));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let full = encode_request(&RequestFrame::Infer {
            tenant: 1,
            model: 0,
            input: tensor(&[1.0, 2.0, 3.0, 4.0], &[4]),
        });
        for cut in 0..full.len() {
            let err = decode_request(&full[..cut]).expect_err("truncation must fail");
            assert!(
                matches!(err, WireError::Truncated { .. } | WireError::Malformed(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut enc = encode_request(&RequestFrame::Stats);
        enc.push(0);
        assert_eq!(
            decode_request(&enc),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn framed_io_round_trips_and_detects_abrupt_eof() {
        let payload = encode_request(&RequestFrame::Hello { client: "c".into() });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf.clone());
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, payload),
            other => panic!("expected frame, got {other:?}"),
        }
        // Clean EOF at the boundary.
        assert!(matches!(read_frame(&mut cursor).unwrap(), FrameRead::Eof));
        // EOF mid-frame is an io error, not a silent drop.
        let mut cut = std::io::Cursor::new(buf[..buf.len() - 1].to_vec());
        assert!(read_frame(&mut cut).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_flagged_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor).unwrap(),
            FrameRead::Oversized(WireError::Oversized { .. })
        ));
    }
}
