//! `gqa-soak`: a loopback soak/load binary for the network front door.
//!
//! Spins up the full stack in one process — LUT engine, `Served`
//! front-end, `NetServer` on an ephemeral loopback port — then replays
//! the deterministic seeded Zipfian trace through real `NetClient`
//! connections (one per tenant) until the deadline, printing the
//! Prometheus text export at a fixed cadence and once more at exit.
//!
//! CI runs `gqa-soak --duration 3s` on both SIMD legs and asserts the
//! final export is non-empty; the exit code is non-zero if the run
//! completed no requests (a wedged pipeline must fail the smoke, not
//! pass it silently).
//!
//! ```text
//! gqa-soak [--duration 3s] [--tenants 4] [--export-every 1s]
//!          [--seed 0xBE7C] [--skew 1.0] [--quota 64]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gqa_net::{FairConfig, NetClient, NetConfig, NetError, NetServer, RemoteError};
use gqa_serve::{EngineBuilder, Method, NonLinearOp, OpPlan, OperatorPlan};
use gqa_served::{
    generate_trace, request_input, BatchConfig, LoadGenConfig, ModelSpec, ServedBuilder,
    ServedConfig,
};
use gqa_tensor::{Tensor, UnaryKind};

const DIM: usize = 32;

struct Args {
    duration: Duration,
    tenants: usize,
    export_every: Duration,
    seed: u64,
    skew: f64,
    quota: usize,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            duration: Duration::from_secs(3),
            tenants: 4,
            export_every: Duration::from_secs(1),
            seed: 0xBE7C,
            skew: 1.0,
            quota: 64,
        }
    }
}

/// Parses `3s`, `250ms`, or `2m`.
fn parse_duration(s: &str) -> Result<Duration, String> {
    let (digits, unit): (String, String) = s.chars().partition(|c| c.is_ascii_digit());
    let n: u64 = digits.parse().map_err(|_| format!("bad duration: {s}"))?;
    match unit.as_str() {
        "ms" => Ok(Duration::from_millis(n)),
        "s" | "" => Ok(Duration::from_secs(n)),
        "m" => Ok(Duration::from_secs(n * 60)),
        _ => Err(format!("bad duration unit in: {s} (use ms, s, or m)")),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--duration" => args.duration = parse_duration(&value("--duration")?)?,
            "--export-every" => args.export_every = parse_duration(&value("--export-every")?)?,
            "--tenants" => {
                args.tenants = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("bad --tenants: {e}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                let v = v.strip_prefix("0x").unwrap_or(&v).to_string();
                args.seed = u64::from_str_radix(&v, 16)
                    .or_else(|_| v.parse())
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--skew" => {
                args.skew = value("--skew")?
                    .parse()
                    .map_err(|e| format!("bad --skew: {e}"))?;
            }
            "--quota" => {
                args.quota = value("--quota")?
                    .parse()
                    .map_err(|e| format!("bad --quota: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "gqa-soak [--duration 3s] [--tenants 4] [--export-every 1s] \
                     [--seed 0xBE7C] [--skew 1.0] [--quota 64]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.tenants == 0 {
        return Err("--tenants must be positive".into());
    }
    Ok(args)
}

/// The soaked model: matmul, LUT-served GELU, row softmax — the same
/// transformer-block-shaped unit of work the serving benches use.
fn mlp_spec() -> ModelSpec {
    let weight: Vec<f32> = (0..DIM * DIM)
        .map(|i| ((i as f32) * 0.37).sin() * 0.5)
        .collect();
    ModelSpec::new("mlp", &[DIM], move |g, x| {
        let w = g.input(Tensor::from_vec(weight.clone(), &[DIM, DIM]));
        let h = g.matmul(x, w);
        let u = g.unary(h, UnaryKind::Gelu);
        g.softmax_rows(u)
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gqa-soak: {e}");
            std::process::exit(2);
        }
    };

    let engine = EngineBuilder::new(OperatorPlan::new().with(
        NonLinearOp::Gelu,
        OpPlan::new(Method::GqaRm).with_seed(7).with_budget(0.05),
    ))
    .build()
    .expect("engine build");
    let served = ServedBuilder::new(engine)
        .with_model(mlp_spec())
        .with_config(ServedConfig {
            batch: BatchConfig {
                max_batch: 16,
                max_wait: 2,
                capacity: 4096,
            },
            workers: 2,
            tenants: args.tenants,
            ..ServedConfig::default()
        })
        .build();
    let server = NetServer::spawn(
        served,
        "127.0.0.1:0",
        NetConfig {
            fair: FairConfig {
                quota: args.quota,
                ..FairConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    println!("gqa-soak: serving on {addr}, {} tenants", args.tenants);

    let trace = generate_trace(&LoadGenConfig {
        seed: args.seed,
        requests: 4096,
        tenants: args.tenants,
        models: 1,
        skew: args.skew,
        mean_gap: 0,
    });
    let row_shape = [DIM];

    let stop = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let deadline = Instant::now() + args.duration;

    std::thread::scope(|scope| {
        for tenant in 0..args.tenants {
            let (trace, stop, completed, shed) = (&trace, &stop, &completed, &shed);
            scope.spawn(move || {
                let mut client =
                    NetClient::connect(addr, &format!("soak-{tenant}")).expect("connect");
                // Closed-loop replay of this tenant's slice, looped until
                // the deadline; backpressure (quota or shared-queue
                // rejection) is counted and shed, as a real client would.
                'soak: loop {
                    for e in trace.iter().filter(|e| e.tenant == tenant) {
                        if stop.load(Ordering::Relaxed) {
                            break 'soak;
                        }
                        let input = request_input(e, &row_shape);
                        match client.infer(tenant as u64, 0, input) {
                            Ok(_) => {
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(NetError::Remote(
                                RemoteError::QuotaExceeded { .. } | RemoteError::Rejected { .. },
                            )) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(NetError::Remote(RemoteError::ShuttingDown)) => break 'soak,
                            Err(e) => panic!("soak client error: {e}"),
                        }
                    }
                }
            });
        }

        // Exporter: periodic Prometheus dumps, then signal the clients.
        let mut next_export = Instant::now() + args.export_every;
        while Instant::now() < deadline {
            std::thread::sleep(args.export_every.min(Duration::from_millis(50)));
            if Instant::now() >= next_export {
                next_export += args.export_every;
                println!(
                    "--- export @ {:?} ---",
                    args.duration - (deadline - Instant::now())
                );
                print!("{}", server.prometheus());
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    let report = server.prometheus();
    println!("--- final export ---");
    print!("{report}");
    let done = completed.load(Ordering::Relaxed);
    println!(
        "gqa-soak: {} completed, {} shed, {} connections, {} quota rejections, {} protocol errors",
        done,
        shed.load(Ordering::Relaxed),
        server.stats().connections,
        server.stats().quota_rejections,
        server.stats().protocol_errors,
    );
    drop(server);
    if report.is_empty() || done == 0 {
        eprintln!("gqa-soak: FAILED — empty export or zero completed requests");
        std::process::exit(1);
    }
}
