//! The TCP front door: a blocking accept loop, thread-per-connection
//! frame handlers, and the fair-admission pump between the sockets and
//! the shared [`Served`] queue.
//!
//! ```text
//!   TcpListener ──▶ connection threads     validate → FairAdmission
//!       (accept)      (read_frame/decode)    (per-tenant lanes, DRR)
//!                          │                        │
//!                          │ reply channel          ▼ admission pump
//!                          │                 Served::submit (shared
//!                          ▼                 bounded queue, coalesce)
//!                    Ticket::wait ──▶ encode_response → write_frame
//! ```
//!
//! No async runtime anywhere: the accept loop and every connection are
//! plain blocking threads (reads carry a short timeout so shutdown is
//! never stuck behind an idle socket), and the pump is one thread
//! draining the [`FairAdmission`] rotation into `Served::submit`.
//!
//! The transport inherits the serving layer's bitwise contract whole: a
//! response read off the socket is `to_bits`-identical to the same
//! request issued through in-process [`Served::serve`], including
//! across mid-traffic engine swaps/refreshes, because tensors travel as
//! raw bit patterns and the socket layer never touches the values.
//! A client that disconnects mid-flight can never wedge a worker: the
//! connection thread is the only thing waiting on its tickets, decode
//! states are checked back in by the `Served` workers regardless, and a
//! dead peer just makes the final `write_frame` fail (ignored).

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use gqa_served::{
    DecodeSession, HistogramSnapshot, LatencyHistogram, Request, Served, ServedError, Ticket,
};
use gqa_tensor::Tensor;

use crate::fair::{AdaptiveWait, FairAdmission, FairConfig};
use crate::wire::{
    decode_request, encode_response, read_frame, write_frame, FrameRead, RemoteError, RequestFrame,
    ResponseFrame, PROTOCOL_VERSION,
};

/// Adaptive-deadline controller configuration (see
/// [`AdaptiveWait`]): the EWMA of observed inter-arrival gaps retunes
/// the live coalescer's `max_wait` through
/// [`Served::set_max_wait`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// EWMA smoothing factor in `(0, 1]` (weight of the newest gap).
    pub alpha: f64,
    /// Lower clamp on the suggested `max_wait` (ticks).
    pub min_wait: u64,
    /// Upper clamp on the suggested `max_wait` (ticks) — the latency
    /// SLO under sparse traffic.
    pub max_wait: u64,
    /// Apply a fresh suggestion every this many admitted arrivals.
    pub update_every: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            alpha: 0.2,
            min_wait: 0,
            max_wait: 8,
            update_every: 32,
        }
    }
}

/// Network front-door configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Fair-admission policy (per-tenant quota, DRR quantum).
    pub fair: FairConfig,
    /// Per-tenant WFQ weights. Empty (the default) means weight 1 for
    /// every tenant of the underlying server; otherwise the length must
    /// equal the server's tenant count.
    pub weights: Vec<u64>,
    /// Adaptive `max_wait` control; `None` leaves the coalescer's
    /// configured deadline untouched.
    pub adaptive: Option<AdaptiveConfig>,
    /// Read-poll timeout on connection sockets. Shutdown latency is
    /// bounded by this; it never drops data (the poll peeks before it
    /// reads).
    pub read_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            fair: FairConfig::default(),
            weights: Vec::new(),
            adaptive: Some(AdaptiveConfig::default()),
            read_timeout: Duration::from_millis(25),
        }
    }
}

/// Point-in-time network-layer counters (the serving counters live in
/// [`Served::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted since start.
    pub connections: u64,
    /// Submissions rejected by a per-tenant admission quota.
    pub quota_rejections: u64,
    /// Malformed/unspeakable frames received (each closed its
    /// connection after a typed error reply).
    pub protocol_errors: u64,
}

/// One admitted-but-not-yet-submitted request: the payload of the fair
/// queue. The reply channel hands the `Served` ticket (or the submit
/// error) back to the connection thread that owns the socket.
struct AdmitJob {
    request: Request,
    reply: SyncSender<Result<Ticket, ServedError>>,
}

/// Fair queue + adaptive controller behind one mutex: arrivals observe
/// the clock and enqueue; the pump polls releases in DRR order.
struct FairState {
    queue: FairAdmission<AdmitJob>,
    adaptive: AdaptiveWait,
    arrivals: u64,
}

struct Shared {
    served: Served,
    fair: Mutex<FairState>,
    fair_cv: Condvar,
    adaptive_cfg: Option<AdaptiveConfig>,
    max_batch: usize,
    shutdown: AtomicBool,
    read_timeout: Duration,
    /// Per-tenant admission-wait histograms in **ticks** (the fair
    /// queue's virtual time), alongside `Served`'s nanosecond service
    /// histograms.
    admission: Vec<LatencyHistogram>,
    connections: AtomicU64,
    quota_rejections: AtomicU64,
    protocol_errors: AtomicU64,
}

impl Shared {
    fn tick(&self) -> u64 {
        self.served.now()
    }
}

/// The running TCP front door. Owns the [`Served`] front-end it fronts;
/// dropping the server stops accepting, drains the fair queue (typed
/// `ShuttingDown` replies), joins every connection thread, then drops
/// the front-end (which drains its own queue in turn).
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    pump: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral loopback port) and
    /// starts the accept loop and admission pump over `served`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.weights` is non-empty with a length different
    /// from the server's tenant count (a configuration bug).
    pub fn spawn(
        served: Served,
        addr: impl ToSocketAddrs,
        cfg: NetConfig,
    ) -> std::io::Result<Self> {
        let tenants = served.tenant_count();
        let weights = if cfg.weights.is_empty() {
            vec![1; tenants]
        } else {
            assert_eq!(
                cfg.weights.len(),
                tenants,
                "weights must cover every tenant"
            );
            cfg.weights.clone()
        };
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let adaptive = cfg
            .adaptive
            .map(|a| AdaptiveWait::new(a.alpha, a.min_wait, a.max_wait))
            .unwrap_or_else(|| AdaptiveWait::new(1.0, 0, u64::MAX));
        let max_batch = {
            // The coalescer's batch width drives the adaptive fill-time
            // estimate; read it once through the stats-free accessor.
            served.batch_config().max_batch
        };
        let shared = Arc::new(Shared {
            fair: Mutex::new(FairState {
                queue: FairAdmission::new(&weights, cfg.fair),
                adaptive,
                arrivals: 0,
            }),
            fair_cv: Condvar::new(),
            adaptive_cfg: cfg.adaptive,
            max_batch,
            shutdown: AtomicBool::new(false),
            read_timeout: cfg.read_timeout,
            admission: (0..tenants).map(|_| LatencyHistogram::new()).collect(),
            connections: AtomicU64::new(0),
            quota_rejections: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            served,
        });
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let pump = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gqa-net-pump".into())
                .spawn(move || pump_loop(&shared))
                .expect("spawn pump")
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("gqa-net-accept".into())
                .spawn(move || accept_loop(&shared, &listener, &conns))
                .expect("spawn accept")
        };
        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
            pump: Some(pump),
            conns,
        })
    }

    /// The bound socket address (the real port when bound with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fronted serving front-end — control plane for engine swaps
    /// and refreshes under live socket traffic.
    #[must_use]
    pub fn served(&self) -> &Served {
        &self.shared.served
    }

    /// Network-layer counters.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        NetStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            quota_rejections: self.shared.quota_rejections.load(Ordering::Relaxed),
            protocol_errors: self.shared.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Admission-wait snapshot (ticks) for one tenant — the WFQ layer's
    /// own latency record, separate from the service-time histograms.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is outside the tenant space.
    #[must_use]
    pub fn admission_wait(&self, tenant: usize) -> HistogramSnapshot {
        self.shared.admission[tenant].snapshot()
    }

    /// The full Prometheus text export — the same body the `Stats`
    /// wire frame returns, callable in-process (the soak binary's
    /// export loop and the CI smoke both scrape this).
    #[must_use]
    pub fn prometheus(&self) -> String {
        render_report(&self.shared)
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // Same lost-wakeup discipline as `Served`: flip the flag while
        // holding the fair lock (the pump reads it under that lock just
        // before waiting), then wake everyone.
        {
            let _guard = self.shared.fair.lock();
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.fair_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
        // Shut the front-end down BEFORE joining connection threads:
        // any handler blocked in `Ticket::wait` is guaranteed a
        // resolution (executed by a draining worker, or failed typed),
        // so the joins below cannot deadlock on a parked request.
        self.shared.served.shutdown();
        let handles = std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for h in handles {
            let _ = h.join();
        }
        // `self.shared.served` drops with the last Arc (here), draining
        // the coalescer queue per Served's own Drop contract.
    }
}

fn accept_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("gqa-net-conn".into())
            .spawn(move || connection_loop(&shared, &stream))
            .expect("spawn connection thread");
        conns.lock().expect("conns lock").push(handle);
    }
}

/// Drains the fair queue into `Served::submit`, one release at a time
/// in DRR order, handing each ticket back through its reply channel.
fn pump_loop(shared: &Shared) {
    loop {
        let release = {
            let mut st = shared.fair.lock().expect("fair lock");
            loop {
                let now = shared.tick();
                if let Some(r) = st.queue.poll(now) {
                    break Some(r);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                st = shared.fair_cv.wait(st).expect("fair wait");
            }
        };
        match release {
            Some(r) => {
                shared.admission[r.tenant].record(r.waited);
                // Submit OUTSIDE the fair lock: the shared queue has its
                // own mutex, and a slow submit must not block arrivals.
                let result = shared.served.submit(r.item.request);
                // A dead peer dropped its receiver; nothing to clean up —
                // the request (if admitted) executes and its ticket is
                // simply never waited on.
                let _ = r.item.reply.send(result);
            }
            None => {
                let mut st = shared.fair.lock().expect("fair lock");
                for r in st.queue.drain() {
                    let _ = r.item.reply.send(Err(ServedError::ShuttingDown));
                }
                return;
            }
        }
    }
}

/// One connection: lockstep read-frame → handle → write-frame. Returns
/// (closing the socket) on clean EOF, peer death, protocol error, or
/// server shutdown.
fn connection_loop(shared: &Arc<Shared>, stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_nodelay(true);
    // Connection-scoped decode sessions: dropped (with this frame's
    // stack) when the connection ends, which releases their KV state.
    let mut sessions: Vec<DecodeSession> = Vec::new();
    loop {
        // Poll for the next frame without consuming: a timeout here is
        // "no traffic", never "half a frame lost".
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // clean EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let mut reader: &TcpStream = stream;
        let payload = match read_frame(&mut reader) {
            Ok(FrameRead::Frame(p)) => p,
            Ok(FrameRead::Eof) => return,
            Ok(FrameRead::Oversized(e)) => {
                // The stream is unsynchronized past a hostile length
                // prefix: answer typed, then drop the connection.
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                respond(
                    stream,
                    &ResponseFrame::Error(RemoteError::Protocol(e.to_string())),
                );
                return;
            }
            // Abrupt disconnect (EOF mid-frame) or a peer too slow to
            // finish a frame within the poll timeout.
            Err(_) => return,
        };
        let response = match decode_request(&payload) {
            Ok(frame) => handle_frame(shared, frame, &mut sessions),
            Err(e) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                respond(
                    stream,
                    &ResponseFrame::Error(RemoteError::Protocol(e.to_string())),
                );
                return;
            }
        };
        if !respond(stream, &response) {
            return;
        }
    }
}

/// Writes one response; `false` means the peer is gone (ignore and
/// close — the mid-flight-disconnect contract).
fn respond(stream: &TcpStream, frame: &ResponseFrame) -> bool {
    let mut writer: &TcpStream = stream;
    write_frame(&mut writer, &encode_response(frame)).is_ok()
}

fn handle_frame(
    shared: &Arc<Shared>,
    frame: RequestFrame,
    sessions: &mut Vec<DecodeSession>,
) -> ResponseFrame {
    match frame {
        RequestFrame::Hello { client: _ } => ResponseFrame::HelloOk {
            version: PROTOCOL_VERSION,
            models: shared.served.model_count() as u64,
            tenants: shared.served.tenant_count() as u64,
        },
        RequestFrame::Infer {
            tenant,
            model,
            input,
        } => handle_infer(shared, tenant, model, input),
        RequestFrame::DecodeOpen { tenant, model } => {
            let Ok(tenant_ix) = usize::try_from(tenant) else {
                return ResponseFrame::Error(RemoteError::UnknownTenant(tenant));
            };
            let Ok(model_ix) = usize::try_from(model) else {
                return ResponseFrame::Error(RemoteError::UnknownModel(model));
            };
            match shared.served.open_decode(tenant_ix, model_ix) {
                Ok(session) => {
                    sessions.push(session);
                    ResponseFrame::DecodeOpened {
                        session: (sessions.len() - 1) as u64,
                    }
                }
                Err(e) => ResponseFrame::Error(RemoteError::from(&e)),
            }
        }
        RequestFrame::DecodeStep { session, input } => {
            let Some(s) = usize::try_from(session).ok().and_then(|i| sessions.get(i)) else {
                return ResponseFrame::Error(RemoteError::UnknownSession(session));
            };
            // Decode steps skip the WFQ lanes: they are strictly
            // sequential per session (one in flight per connection), so
            // a tenant cannot flood through them, and their latency
            // budget is the decode loop itself.
            match s.step(input).map(Ticket::wait) {
                Ok(Ok(output)) => ResponseFrame::Output { output },
                Ok(Err(e)) | Err(e) => ResponseFrame::Error(RemoteError::from(&e)),
            }
        }
        RequestFrame::Stats => ResponseFrame::StatsText {
            text: render_report(shared),
        },
    }
}

/// The `Infer` path: validate → fair-admit → pump submits → wait.
fn handle_infer(shared: &Arc<Shared>, tenant: u64, model: u64, input: Tensor) -> ResponseFrame {
    // Validate BEFORE admission so a bad request never consumes fair-
    // queue quota or credits.
    let Ok(tenant_ix) = usize::try_from(tenant) else {
        return ResponseFrame::Error(RemoteError::UnknownTenant(tenant));
    };
    if tenant_ix >= shared.served.tenant_count() {
        return ResponseFrame::Error(RemoteError::UnknownTenant(tenant));
    }
    let Ok(model_ix) = usize::try_from(model) else {
        return ResponseFrame::Error(RemoteError::UnknownModel(model));
    };
    let Some(row_shape) = shared.served.model_row_shape(model_ix) else {
        return ResponseFrame::Error(RemoteError::UnknownModel(model));
    };
    if input.shape != row_shape {
        return ResponseFrame::Error(RemoteError::BadShape {
            model,
            expected: row_shape.iter().map(|&d| d as u64).collect(),
            got: input.shape.iter().map(|&d| d as u64).collect(),
        });
    }
    let (reply, ticket_rx): (_, Receiver<Result<Ticket, ServedError>>) =
        std::sync::mpsc::sync_channel(1);
    let job = AdmitJob {
        request: Request {
            tenant: tenant_ix,
            model: model_ix,
            input,
        },
        reply,
    };
    let retune = {
        let mut st = shared.fair.lock().expect("fair lock");
        // Checked under the fair lock: the pump's final drain runs
        // under this lock after the flag flips, so a submit past this
        // point is guaranteed a pump that will poll it — never a job
        // parked in a queue nobody reads.
        if shared.shutdown.load(Ordering::Acquire) {
            return ResponseFrame::Error(RemoteError::ShuttingDown);
        }
        let now = shared.tick();
        st.adaptive.observe(now);
        st.arrivals += 1;
        if let Err((rej, _job)) = st.queue.submit(tenant_ix, job, now) {
            shared.quota_rejections.fetch_add(1, Ordering::Relaxed);
            return ResponseFrame::Error(RemoteError::QuotaExceeded {
                queued: rej.depth as u64,
                quota: rej.capacity as u64,
            });
        }
        match shared.adaptive_cfg {
            Some(a) if st.arrivals.is_multiple_of(a.update_every) => {
                Some(st.adaptive.suggest(shared.max_batch))
            }
            _ => None,
        }
    };
    shared.fair_cv.notify_one();
    if let Some(max_wait) = retune {
        // Outside the fair lock: set_max_wait takes the served queue
        // lock, and the two must never nest.
        shared.served.set_max_wait(max_wait);
    }
    match ticket_rx.recv() {
        Ok(Ok(ticket)) => match ticket.wait() {
            Ok(output) => ResponseFrame::Output { output },
            Err(e) => ResponseFrame::Error(RemoteError::from(&e)),
        },
        Ok(Err(e)) => ResponseFrame::Error(RemoteError::from(&e)),
        // The pump died with our job in hand — shutdown.
        Err(_) => ResponseFrame::Error(RemoteError::ShuttingDown),
    }
}

/// Renders the full Prometheus text export: serving + engine + network
/// counters as gauges, then the per-tenant service-latency and
/// admission-wait histogram series (via
/// [`HistogramSnapshot::render_prometheus`]).
fn render_report(shared: &Shared) -> String {
    let mut out = String::new();
    let stats = shared.served.stats();
    let mut gauge = |name: &str, v: u64| {
        out.push_str(&format!("{name} {v}\n"));
    };
    gauge("gqa_served_submitted_total", stats.submitted);
    gauge("gqa_served_completed_total", stats.completed);
    gauge("gqa_served_rejected_total", stats.rejected);
    gauge("gqa_served_batches_total", stats.batches);
    gauge("gqa_served_batched_rows_total", stats.batched_rows);
    gauge("gqa_served_queue_depth", stats.depth as u64);
    gauge("gqa_engine_ops", stats.engine.ops as u64);
    gauge("gqa_engine_sessions_total", stats.engine.sessions);
    gauge("gqa_engine_swaps_total", stats.engine.swaps);
    gauge("gqa_engine_refreshes_total", stats.engine.refreshes);
    gauge("gqa_engine_shard_reloads_total", stats.engine.shard_reloads);
    gauge("gqa_engine_shard_errors_total", stats.engine.shard_errors);
    gauge(
        "gqa_net_connections_total",
        shared.connections.load(Ordering::Relaxed),
    );
    gauge(
        "gqa_net_quota_rejections_total",
        shared.quota_rejections.load(Ordering::Relaxed),
    );
    gauge(
        "gqa_net_protocol_errors_total",
        shared.protocol_errors.load(Ordering::Relaxed),
    );
    for tenant in 0..shared.served.tenant_count() {
        let label = tenant.to_string();
        out.push_str(
            &shared
                .served
                .tenant_latency(tenant)
                .render_prometheus("gqa_served_latency_ns", &[("tenant", &label)]),
        );
        out.push_str(
            &shared.admission[tenant]
                .snapshot()
                .render_prometheus("gqa_net_admission_wait_ticks", &[("tenant", &label)]),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The front-door types cross thread boundaries by design.
    #[test]
    fn net_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetServer>();
        assert_send_sync::<NetConfig>();
        assert_send_sync::<NetStats>();
    }
}
