//! A blocking wire-protocol client: one TCP connection, lockstep
//! request/response frames.
//!
//! The client is deliberately dumb — it encodes a [`RequestFrame`],
//! writes it, reads exactly one [`ResponseFrame`], and surfaces typed
//! server failures as [`NetError::Remote`]. No retries, no pipelining,
//! no pooling: those are caller policy, and the loopback equivalence
//! suites need the transport to add *nothing* between the bytes in and
//! the bytes out.

use std::net::{TcpStream, ToSocketAddrs};

use gqa_tensor::Tensor;

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, FrameRead, RemoteError, RequestFrame,
    ResponseFrame, WireError, PROTOCOL_VERSION,
};

/// A client-side failure: transport, framing, or a typed server error.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level I/O failure.
    Io(std::io::Error),
    /// The server's bytes did not parse as a response frame.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Remote(RemoteError),
    /// The server closed the connection where a response frame was due.
    Closed,
    /// The server answered with a well-formed frame of the wrong kind
    /// for the request (names the unexpected frame).
    Unexpected(&'static str),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Remote(e) => write!(f, "server error: {e}"),
            NetError::Closed => write!(f, "connection closed mid-exchange"),
            NetError::Unexpected(kind) => write!(f, "unexpected response frame: {kind}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            NetError::Remote(e) => Some(e),
            NetError::Closed | NetError::Unexpected(_) => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// What the server reported in its `HelloOk` handshake reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// The server's protocol version (matches [`PROTOCOL_VERSION`]).
    pub version: u8,
    /// Registered model count.
    pub models: u64,
    /// Configured tenant-space size.
    pub tenants: u64,
}

/// A blocking connection to a [`crate::NetServer`].
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    info: ServerInfo,
}

impl NetClient {
    /// Connects and completes the `Hello` handshake. `client` is a
    /// free-form identification string (server logs only).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on connect/write failure, [`NetError::Wire`] /
    /// [`NetError::Remote`] / [`NetError::Closed`] if the handshake
    /// reply is malformed, refused, or missing.
    pub fn connect(addr: impl ToSocketAddrs, client: &str) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut this = Self {
            stream,
            info: ServerInfo {
                version: PROTOCOL_VERSION,
                models: 0,
                tenants: 0,
            },
        };
        match this.exchange(&RequestFrame::Hello {
            client: client.to_string(),
        })? {
            ResponseFrame::HelloOk {
                version,
                models,
                tenants,
            } => {
                this.info = ServerInfo {
                    version,
                    models,
                    tenants,
                };
                Ok(this)
            }
            ResponseFrame::Error(e) => Err(NetError::Remote(e)),
            other => Err(NetError::Unexpected(frame_kind(&other))),
        }
    }

    /// The handshake report from [`NetClient::connect`].
    #[must_use]
    pub fn server_info(&self) -> ServerInfo {
        self.info
    }

    /// One inference round trip; the returned tensor is bit-identical
    /// to in-process [`gqa_served::Served::serve`] for the same
    /// request.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] carries the server's typed refusal
    /// (rejection, quota, unknown ids, bad shape, shutdown); transport
    /// failures surface as [`NetError::Io`] / [`NetError::Closed`].
    pub fn infer(&mut self, tenant: u64, model: u64, input: Tensor) -> Result<Tensor, NetError> {
        match self.exchange(&RequestFrame::Infer {
            tenant,
            model,
            input,
        })? {
            ResponseFrame::Output { output } => Ok(output),
            ResponseFrame::Error(e) => Err(NetError::Remote(e)),
            other => Err(NetError::Unexpected(frame_kind(&other))),
        }
    }

    /// Opens a decode session on the server; the returned id scopes to
    /// this connection and feeds [`NetClient::decode_step`].
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] on validation/`DecodeUnsupported` refusal,
    /// transport errors otherwise.
    pub fn open_decode(&mut self, tenant: u64, model: u64) -> Result<u64, NetError> {
        match self.exchange(&RequestFrame::DecodeOpen { tenant, model })? {
            ResponseFrame::DecodeOpened { session } => Ok(session),
            ResponseFrame::Error(e) => Err(NetError::Remote(e)),
            other => Err(NetError::Unexpected(frame_kind(&other))),
        }
    }

    /// One decode step in a session from [`NetClient::open_decode`];
    /// bit-identical to the in-process
    /// [`gqa_served::DecodeSession::step`] at the same position.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with [`RemoteError::UnknownSession`] for a
    /// bad id, otherwise as [`NetClient::infer`].
    pub fn decode_step(&mut self, session: u64, input: Tensor) -> Result<Tensor, NetError> {
        match self.exchange(&RequestFrame::DecodeStep { session, input })? {
            ResponseFrame::Output { output } => Ok(output),
            ResponseFrame::Error(e) => Err(NetError::Remote(e)),
            other => Err(NetError::Unexpected(frame_kind(&other))),
        }
    }

    /// Fetches the server's Prometheus text export.
    ///
    /// # Errors
    ///
    /// Transport failures only — `Stats` never fails server-side.
    pub fn stats(&mut self) -> Result<String, NetError> {
        match self.exchange(&RequestFrame::Stats)? {
            ResponseFrame::StatsText { text } => Ok(text),
            ResponseFrame::Error(e) => Err(NetError::Remote(e)),
            other => Err(NetError::Unexpected(frame_kind(&other))),
        }
    }

    /// Writes one request frame and reads exactly one response frame.
    fn exchange(&mut self, frame: &RequestFrame) -> Result<ResponseFrame, NetError> {
        write_frame(&mut self.stream, &encode_request(frame))?;
        match read_frame(&mut self.stream)? {
            FrameRead::Frame(payload) => Ok(decode_response(&payload)?),
            FrameRead::Eof => Err(NetError::Closed),
            FrameRead::Oversized(e) => Err(NetError::Wire(e)),
        }
    }
}

fn frame_kind(frame: &ResponseFrame) -> &'static str {
    match frame {
        ResponseFrame::HelloOk { .. } => "HelloOk",
        ResponseFrame::Output { .. } => "Output",
        ResponseFrame::DecodeOpened { .. } => "DecodeOpened",
        ResponseFrame::StatsText { .. } => "StatsText",
        ResponseFrame::Error(_) => "Error",
    }
}
