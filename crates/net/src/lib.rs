//! `gqa-net`: the network front door for the `gqa-served` serving
//! front-end — a socket transport, wire protocol, and fair admission
//! layer.
//!
//! The serving stack below this crate is process-local: tenants hold a
//! [`gqa_served::Served`] handle and submit through it. This crate puts
//! that behind a TCP socket without weakening any of its contracts:
//!
//! - **[`wire`]** — a length-prefixed, versioned binary protocol.
//!   Requests (`Hello`, `Infer`, `DecodeOpen`, `DecodeStep`, `Stats`)
//!   and responses are pure-function encode/decode over byte buffers;
//!   tensors travel as raw `f32` bit patterns, so the transport cannot
//!   perturb a single mantissa bit. Every decoder is total: malformed
//!   bytes come back as typed [`WireError`]s, never panics.
//! - **[`fair`]** — per-tenant admission quotas and deficit-round-robin
//!   weighted fair queuing in front of the shared coalescer queue
//!   ([`FairAdmission`]), plus an EWMA arrival-rate tracker
//!   ([`AdaptiveWait`]) that retunes the coalescer's `max_wait` between
//!   throughput (dense traffic) and latency (sparse traffic). Both are
//!   pure tick-driven state machines in the [`gqa_served::Coalescer`]
//!   mold — no internal clocks, fully deterministic under test.
//! - **[`server`]** — [`NetServer`]: a blocking accept loop (no async
//!   runtime), thread-per-connection frame handlers, and a single
//!   admission pump draining the fair queue into `Served::submit`.
//! - **[`client`]** — [`NetClient`]: a blocking lockstep client used by
//!   the equivalence suites, the `gqa-soak` binary, and examples.
//!
//! The load-bearing contract is inherited, not invented here: a
//! response read off the socket is `to_bits`-identical to the same
//! request served in-process, including across mid-traffic engine
//! swaps and refreshes — the wire layer moves bits, the fairness layer
//! only reorders admission, and the coalescing-invisibility contract
//! does the rest.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod fair;
pub mod server;
pub mod wire;

pub use client::{NetClient, NetError, ServerInfo};
pub use fair::{AdaptiveWait, FairAdmission, FairConfig, Release};
pub use server::{AdaptiveConfig, NetConfig, NetServer, NetStats};
pub use wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    FrameRead, RemoteError, RequestFrame, ResponseFrame, WireError, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
