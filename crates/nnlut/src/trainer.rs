//! NN-LUT training configuration and loop.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gqa_funcs::NonLinearOp;
use gqa_pwl::QuantAwareLut;

use crate::extract::extract_pwl;
use crate::network::{AdamState, ReluNet1d};

/// NN-LUT training configuration.
///
/// Defaults follow the NN-LUT paper's protocol as cited in §3.2/§4.1:
/// 100 K uniform training samples, Adam, and an `N−1`-unit hidden layer for
/// an `N`-entry LUT.
#[derive(Debug, Clone, PartialEq)]
pub struct NnLutConfig {
    /// Target operator.
    pub op: NonLinearOp,
    /// LUT entries `N` (hidden width is `N − 1`). Default 8.
    pub entries: usize,
    /// Training range (defaults to the operator's Table-1 range).
    pub range: (f64, f64),
    /// Number of uniform training samples (paper: 100 K).
    pub samples: usize,
    /// Adam steps. Default 4000.
    pub steps: usize,
    /// Mini-batch size. Default 256.
    pub batch: usize,
    /// Adam learning rate. Default 5e-3 with cosine decay to 10 %.
    pub lr: f64,
    /// FXP fractional bits λ for the final conversion (paper: 5).
    pub lambda: u32,
    /// RNG seed.
    pub seed: u64,
}

impl NnLutConfig {
    /// Default NN-LUT configuration for `op` (8-entry).
    #[must_use]
    pub fn for_op(op: NonLinearOp) -> Self {
        Self {
            op,
            entries: 8,
            range: op.default_range(),
            samples: 100_000,
            steps: 4000,
            batch: 256,
            lr: 5e-3,
            lambda: 5,
            seed: 0xBEEF,
        }
    }

    /// Switches to a 16-entry LUT.
    #[must_use]
    pub fn with_entries_16(mut self) -> Self {
        self.entries = 16;
        self
    }

    /// Sets the number of LUT entries.
    #[must_use]
    pub fn with_entries(mut self, n: usize) -> Self {
        self.entries = n;
        self
    }

    /// Sets the number of Adam steps.
    #[must_use]
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Sets the training-set size.
    #[must_use]
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Order-stable content hash of every field that affects the trained
    /// artifact (FNV-1a; f64s enter as raw bits). Used by artifact
    /// registries to content-address converted NN-LUTs.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = gqa_funcs::Fnv1a::new();
        h.eat_str(self.op.name());
        h.eat(self.entries as u64);
        h.eat_f64(self.range.0);
        h.eat_f64(self.range.1);
        h.eat(self.samples as u64);
        h.eat(self.steps as u64);
        h.eat(self.batch as u64);
        h.eat_f64(self.lr);
        h.eat(u64::from(self.lambda));
        h.eat(self.seed);
        h.finish()
    }

    fn validate(&self) {
        assert!(self.entries >= 2, "need at least 2 entries");
        assert!(self.range.0 < self.range.1, "empty range");
        assert!(self.samples >= self.batch, "fewer samples than one batch");
        assert!(
            self.steps >= 1 && self.batch >= 1,
            "degenerate training setup"
        );
        assert!(self.lr > 0.0, "learning rate must be positive");
    }
}

/// Trained NN-LUT baseline: the network plus its extracted, FXP-converted
/// LUT.
#[derive(Debug, Clone)]
pub struct NnLutResult {
    network: ReluNet1d,
    lut: QuantAwareLut,
    train_mse: f64,
}

impl NnLutResult {
    /// The extracted LUT ("directly convert the slopes, intercepts, and
    /// breakpoints to the same precision as GQA-LUT", §4.1).
    #[must_use]
    pub fn lut(&self) -> &QuantAwareLut {
        &self.lut
    }

    /// The trained network.
    #[must_use]
    pub fn network(&self) -> &ReluNet1d {
        &self.network
    }

    /// Final full-dataset training MSE of the (un-quantized) network.
    #[must_use]
    pub fn train_mse(&self) -> f64 {
        self.train_mse
    }
}

/// The NN-LUT trainer.
///
/// See the crate docs for an example.
#[derive(Clone)]
pub struct NnLutTrainer {
    config: NnLutConfig,
    function: Arc<dyn Fn(f64) -> f64 + Send + Sync>,
}

impl std::fmt::Debug for NnLutTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NnLutTrainer")
            .field("config", &self.config)
            .finish()
    }
}

impl NnLutTrainer {
    /// Builds a trainer for the configured operator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    #[must_use]
    pub fn new(config: NnLutConfig) -> Self {
        let op = config.op;
        Self::with_function(config, Arc::new(move |x| op.eval(x)))
    }

    /// Builds a trainer for a custom target function.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    #[must_use]
    pub fn with_function(
        config: NnLutConfig,
        function: Arc<dyn Fn(f64) -> f64 + Send + Sync>,
    ) -> Self {
        config.validate();
        Self { config, function }
    }

    /// Runs training and extraction.
    #[must_use]
    pub fn train(&self) -> NnLutResult {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let (rn, rp) = cfg.range;

        // The 100 K-sample uniform training set NN-LUT requires.
        let xs: Vec<f64> = (0..cfg.samples).map(|_| rng.gen_range(rn..rp)).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (self.function)(x)).collect();

        let hidden = cfg.entries - 1;
        let mut net = ReluNet1d::init(hidden, cfg.range, &mut rng);
        let mut adam = AdamState::new(3 * hidden + 2);

        let mut params = vec![0.0f64; 3 * hidden + 2];
        let mut grads = vec![0.0f64; 3 * hidden + 2];

        for step in 0..cfg.steps {
            // Cosine decay from lr to lr/10.
            let progress = step as f64 / cfg.steps as f64;
            let lr = cfg.lr * (0.55 + 0.45 * (std::f64::consts::PI * progress).cos());

            grads.iter_mut().for_each(|g| *g = 0.0);
            let inv_b = 1.0 / cfg.batch as f64;
            for _ in 0..cfg.batch {
                let idx = rng.gen_range(0..xs.len());
                let (x, y) = (xs[idx], ys[idx]);
                let pred = net.forward(x);
                let dl = 2.0 * (pred - y) * inv_b;
                for i in 0..hidden {
                    let z = net.w1[i] * x + net.b1[i];
                    if z > 0.0 {
                        grads[i] += dl * net.w2[i] * x; // d/dw1
                        grads[hidden + i] += dl * net.w2[i]; // d/db1
                        grads[2 * hidden + i] += dl * z; // d/dw2
                    }
                }
                grads[3 * hidden] += dl * x; // d/da
                grads[3 * hidden + 1] += dl; // d/dc
            }

            pack(&net, &mut params);
            adam.step(&mut params, &grads, lr);
            unpack(&params, &mut net);
        }

        // Full-dataset evaluation sweep, batched (100 K points at the
        // paper's budget — the single hottest loop of NN-LUT training).
        let mut preds = vec![0.0f64; xs.len()];
        net.forward_batch(&xs, &mut preds);
        let train_mse = preds
            .iter()
            .zip(&ys)
            .map(|(&p, &y)| {
                let d = p - y;
                d * d
            })
            .sum::<f64>()
            / xs.len() as f64;

        let pwl = extract_pwl(&net, cfg.range).expect("trained network has kinks");
        let lut = QuantAwareLut::new(pwl, cfg.lambda).expect("valid pwl");
        NnLutResult {
            network: net,
            lut,
            train_mse,
        }
    }
}

fn pack(net: &ReluNet1d, params: &mut [f64]) {
    let h = net.hidden();
    params[..h].copy_from_slice(&net.w1);
    params[h..2 * h].copy_from_slice(&net.b1);
    params[2 * h..3 * h].copy_from_slice(&net.w2);
    params[3 * h] = net.a;
    params[3 * h + 1] = net.c;
}

fn unpack(params: &[f64], net: &mut ReluNet1d) {
    let h = net.hidden();
    net.w1.copy_from_slice(&params[..h]);
    net.b1.copy_from_slice(&params[h..2 * h]);
    net.w2.copy_from_slice(&params[2 * h..3 * h]);
    net.a = params[3 * h];
    net.c = params[3 * h + 1];
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_pwl::eval::mse_grid;

    fn quick(op: NonLinearOp) -> NnLutConfig {
        NnLutConfig::for_op(op)
            .with_steps(1500)
            .with_samples(8_000)
            .with_seed(11)
    }

    #[test]
    fn trains_gelu_to_reasonable_mse() {
        let r = NnLutTrainer::new(quick(NonLinearOp::Gelu)).train();
        assert!(r.train_mse() < 5e-3, "train mse {}", r.train_mse());
        let f = |x: f64| NonLinearOp::Gelu.eval(x);
        let grid = mse_grid(r.lut().pwl(), &f, (-4.0, 4.0), 0.01);
        assert!(grid < 5e-3, "grid mse {grid}");
    }

    #[test]
    fn entry_count_matches_config() {
        let r8 = NnLutTrainer::new(quick(NonLinearOp::Exp)).train();
        assert_eq!(r8.lut().pwl().num_entries(), 8);
        let r16 = NnLutTrainer::new(quick(NonLinearOp::Exp).with_entries_16()).train();
        assert_eq!(r16.lut().pwl().num_entries(), 16);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = NnLutTrainer::new(quick(NonLinearOp::Hswish)).train();
        let b = NnLutTrainer::new(quick(NonLinearOp::Hswish)).train();
        assert_eq!(a.network(), b.network());
    }

    #[test]
    fn custom_function() {
        let cfg = quick(NonLinearOp::Sigmoid);
        let r = NnLutTrainer::with_function(cfg, Arc::new(|x: f64| x.max(0.0))).train();
        // ReLU is exactly representable; a short run gets close.
        assert!(r.train_mse() < 5e-3, "mse {}", r.train_mse());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn bad_config_rejected() {
        let mut cfg = NnLutConfig::for_op(NonLinearOp::Gelu);
        cfg.range = (1.0, 1.0);
        let _ = NnLutTrainer::new(cfg);
    }
}
