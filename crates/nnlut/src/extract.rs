//! Closed-form extraction of the pwl from a trained network.
//!
//! `h` is exactly piece-wise linear with kinks at `t_i = −b1_i/w1_i`, so
//! the LUT parameters are read off by evaluating `h` inside each segment —
//! no fitting involved. This is the inverse direction from GQA-LUT
//! ("[NN-LUT's] breakpoints are deduced from the slopes and intercepts …
//! inherently inverse to that of GQA-LUT", §3.3), which is precisely why
//! Rounding Mutation cannot be retrofitted onto it.

use gqa_pwl::{Pwl, PwlError};

use crate::network::ReluNet1d;

/// Extracts the N-entry pwl of a trained network over `range`.
///
/// Kinks are clamped into the range and sorted; they become the LUT
/// breakpoints verbatim (NN-LUT stores them at full precision — the
/// quantization happens later, per §4.1, by "directly converting" to the
/// target precision). Each segment's `(k, b)` is recovered exactly from two
/// evaluations of `h` strictly inside the segment.
///
/// # Errors
///
/// Returns [`PwlError`] if the network has no kinks (no hidden units) or
/// produces non-finite values.
pub fn extract_pwl(net: &ReluNet1d, range: (f64, f64)) -> Result<Pwl, PwlError> {
    let (rn, rp) = range;
    if rn >= rp {
        return Err(PwlError::BadRange { lo: rn, hi: rp });
    }
    let mut kinks: Vec<f64> = net.kinks().iter().map(|&t| t.clamp(rn, rp)).collect();
    if kinks.is_empty() {
        return Err(PwlError::NoBreakpoints);
    }
    kinks.sort_by(|a, b| a.partial_cmp(b).expect("finite kinks"));

    let mut knots = Vec::with_capacity(kinks.len() + 2);
    knots.push(rn);
    knots.extend_from_slice(&kinks);
    knots.push(rp);

    let n = kinks.len() + 1;
    let mut slopes = Vec::with_capacity(n);
    let mut intercepts = Vec::with_capacity(n);
    for s in 0..n {
        let (lo, hi) = (knots[s], knots[s + 1]);
        let (k, b) = if hi - lo < 1e-9 {
            (0.0, net.forward(lo))
        } else {
            // Two probes strictly inside the open segment: h is linear there.
            let x1 = lo + (hi - lo) * 0.25;
            let x2 = lo + (hi - lo) * 0.75;
            let (y1, y2) = (net.forward(x1), net.forward(x2));
            let k = (y2 - y1) / (x2 - x1);
            (k, y1 - k * x1)
        };
        slopes.push(k);
        intercepts.push(b);
    }
    Pwl::new(slopes, intercepts, kinks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_is_exact() {
        // A hand-built network: its pwl extraction must reproduce h(x)
        // everywhere in range (h *is* a pwl).
        let net = ReluNet1d {
            w1: vec![1.0, 1.0, -1.0],
            b1: vec![0.0, -1.0, -0.5],
            w2: vec![0.5, -1.5, 2.0],
            a: 0.3,
            c: -0.2,
        };
        let pwl = extract_pwl(&net, (-4.0, 4.0)).unwrap();
        assert_eq!(pwl.num_entries(), 4);
        for i in -400..=400 {
            let x = i as f64 * 0.01;
            // Skip points exactly at kinks where left/right conventions differ.
            if pwl.breakpoints().iter().any(|&p| (x - p).abs() < 1e-9) {
                continue;
            }
            assert!(
                (pwl.eval(x) - net.forward(x)).abs() < 1e-9,
                "x={x}: {} vs {}",
                pwl.eval(x),
                net.forward(x)
            );
        }
    }

    #[test]
    fn negative_w1_units_handled() {
        // Unit active for x < t: contributes slope on the left side.
        let net = ReluNet1d {
            w1: vec![-2.0],
            b1: vec![2.0],
            w2: vec![1.0],
            a: 0.0,
            c: 0.0,
        };
        // h(x) = relu(-2x + 2) = -2x + 2 for x < 1, else 0.
        let pwl = extract_pwl(&net, (-4.0, 4.0)).unwrap();
        assert_eq!(pwl.breakpoints(), &[1.0]);
        assert!((pwl.eval(0.0) - 2.0).abs() < 1e-9);
        assert!((pwl.eval(2.0)).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_kinks_clamped() {
        let net = ReluNet1d {
            w1: vec![1.0, 1.0],
            b1: vec![-10.0, 0.0],
            w2: vec![1.0, 1.0],
            a: 0.0,
            c: 0.0,
        };
        let pwl = extract_pwl(&net, (-1.0, 1.0)).unwrap();
        assert!(pwl.breakpoints().iter().all(|&p| (-1.0..=1.0).contains(&p)));
    }

    #[test]
    fn no_hidden_units_is_error() {
        let net = ReluNet1d {
            w1: vec![],
            b1: vec![],
            w2: vec![],
            a: 1.0,
            c: 0.0,
        };
        assert!(matches!(
            extract_pwl(&net, (-1.0, 1.0)),
            Err(PwlError::NoBreakpoints)
        ));
    }
}
