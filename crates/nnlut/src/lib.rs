//! # gqa-nnlut — the NN-LUT baseline (paper ref. \[11\])
//!
//! NN-LUT ("neural approximation of non-linear operations", Yu et al.,
//! DAC 2022) trains a one-hidden-layer ReLU network
//!
//! ```text
//! h(x) = a·x + c + Σ_{i=1}^{H} w2_i · relu(w1_i·x + b1_i)
//! ```
//!
//! on ~100 K uniform samples and then reads the piece-wise linear
//! approximation directly off the weights: `h` is itself a pwl whose kinks
//! sit at `t_i = −b1_i / w1_i`. With `H = N − 1` hidden units the extracted
//! pwl has exactly `N` entries, matching the paper's 8/16-entry LUTs.
//!
//! This crate reproduces that baseline faithfully — including its two
//! structural disadvantages the paper exploits:
//!
//! 1. it needs orders of magnitude more data than GQA-LUT
//!    (100 K vs 0.35–0.8 K samples), and
//! 2. breakpoints are *derived* from weights, so quantization error cannot
//!    be injected into the training loop the way Rounding Mutation injects
//!    it into evolution (§3.3: "incorporating RM into NN-LUT is intricate").
//!
//! ## Example
//!
//! ```
//! use gqa_nnlut::{NnLutConfig, NnLutTrainer};
//! use gqa_funcs::NonLinearOp;
//!
//! let cfg = NnLutConfig::for_op(NonLinearOp::Gelu)
//!     .with_steps(300)       // shrunk for the doctest
//!     .with_samples(2_000)
//!     .with_seed(1);
//! let result = NnLutTrainer::new(cfg).train();
//! assert_eq!(result.lut().pwl().num_entries(), 8);
//! ```

//!
//! ## The `simd` feature (default-on)
//!
//! `ReluNet1d::forward_batch` sweeps each hidden unit across the buffer
//! with the wide-lane kernels of `gqa-simd` (AVX2, runtime-detected);
//! the scalar fallbacks produce bit-identical results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod extract;
mod network;
mod trainer;

pub use extract::extract_pwl;
pub use network::ReluNet1d;
pub use trainer::{NnLutConfig, NnLutResult, NnLutTrainer};
