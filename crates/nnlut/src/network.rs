//! The 1-D one-hidden-layer ReLU network and its Adam trainer.

use rand::rngs::StdRng;
use rand::Rng;

/// A scalar→scalar ReLU network
/// `h(x) = a·x + c + Σ w2_i · relu(w1_i·x + b1_i)`.
///
/// The direct linear path `a·x + c` lets the network represent arbitrary
/// tail slopes without spending hidden units on them (NN-LUT's formulation;
/// also what makes the extracted pwl's first segment meaningful).
#[derive(Debug, Clone, PartialEq)]
pub struct ReluNet1d {
    /// First-layer weights `w1_i`.
    pub w1: Vec<f64>,
    /// First-layer biases `b1_i`.
    pub b1: Vec<f64>,
    /// Second-layer weights `w2_i`.
    pub w2: Vec<f64>,
    /// Direct linear weight `a`.
    pub a: f64,
    /// Output bias `c`.
    pub c: f64,
}

impl ReluNet1d {
    /// Initializes `hidden` units with kinks spread uniformly over `range`
    /// (`w1 = 1, b1 = −t_i`), small random output weights, and a zero
    /// linear path. This mirrors NN-LUT's breakpoint-aware initialization
    /// and makes training stable in a few thousand steps.
    #[must_use]
    pub fn init(hidden: usize, range: (f64, f64), rng: &mut StdRng) -> Self {
        let (rn, rp) = range;
        let w1 = vec![1.0; hidden];
        let b1: Vec<f64> = (1..=hidden)
            .map(|i| {
                let t = rn + (rp - rn) * i as f64 / (hidden + 1) as f64;
                -t
            })
            .collect();
        let w2: Vec<f64> = (0..hidden).map(|_| rng.gen_range(-0.1..0.1)).collect();
        Self {
            w1,
            b1,
            w2,
            a: 0.0,
            c: 0.0,
        }
    }

    /// Number of hidden units `H`.
    #[must_use]
    pub fn hidden(&self) -> usize {
        self.w1.len()
    }

    /// Forward pass.
    #[must_use]
    pub fn forward(&self, x: f64) -> f64 {
        let mut y = self.a * x + self.c;
        for i in 0..self.hidden() {
            let z = self.w1[i] * x + self.b1[i];
            if z > 0.0 {
                y += self.w2[i] * z;
            }
        }
        y
    }

    /// Batched forward pass, unit-major: the direct path fills `out`
    /// through the wide-lane segment kernel, then each hidden unit's
    /// `(w1, b1, w2)` is hoisted and swept across the whole buffer by
    /// [`gqa_simd::relu_unit_accum`] — a branchless multiply/add/`max`
    /// pipeline (AVX2 when available, scalar otherwise; the kernel never
    /// contracts to FMA, so lanes round exactly like the scalar
    /// expression). Per-element accumulation order matches
    /// [`ReluNet1d::forward`] exactly, so every output compares equal to
    /// the scalar path (inactive units contribute `±0.0` instead of being
    /// skipped — invisible up to the sign of zero).
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch.
    pub fn forward_batch(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "batch length mismatch");
        gqa_simd::axpy_f64(self.a, self.c, xs, out);
        for i in 0..self.hidden() {
            gqa_simd::relu_unit_accum(self.w1[i], self.b1[i], self.w2[i], xs, out);
        }
    }

    /// The kink locations `t_i = −b1_i / w1_i` (unordered; `None` entries
    /// for dead units with `w1_i = 0` are skipped).
    #[must_use]
    pub fn kinks(&self) -> Vec<f64> {
        self.w1
            .iter()
            .zip(&self.b1)
            .filter(|(&w, _)| w.abs() > 1e-12)
            .map(|(&w, &b)| -b / w)
            .collect()
    }
}

impl gqa_funcs::BatchEval for ReluNet1d {
    fn eval_scalar(&self, x: f64) -> f64 {
        self.forward(x)
    }

    fn eval_batch(&self, xs: &[f64], out: &mut [f64]) {
        self.forward_batch(xs, out);
    }
}

/// Adam optimizer state for one parameter vector.
#[derive(Debug, Clone, Default)]
pub(crate) struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl AdamState {
    pub(crate) fn new(len: usize) -> Self {
        Self {
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
        }
    }

    /// One Adam step over a flat parameter slice.
    pub(crate) fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64) {
        const BETA1: f64 = 0.9;
        const BETA2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - BETA1.powi(self.t as i32);
        let bc2 = 1.0 - BETA2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = BETA1 * self.m[i] + (1.0 - BETA1) * grads[i];
            self.v[i] = BETA2 * self.v[i] + (1.0 - BETA2) * grads[i] * grads[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn init_places_kinks_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = ReluNet1d::init(7, (-4.0, 4.0), &mut rng);
        let mut kinks = net.kinks();
        kinks.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(kinks.len(), 7);
        assert!(kinks.iter().all(|&t| (-4.0..=4.0).contains(&t)));
        // Uniform spread: first kink at -3, last at 3.
        assert!((kinks[0] + 3.0).abs() < 1e-12);
        assert!((kinks[6] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn forward_is_piecewise_linear() {
        let net = ReluNet1d {
            w1: vec![1.0],
            b1: vec![0.0],
            w2: vec![2.0],
            a: 1.0,
            c: 0.5,
        };
        // x < 0: h = x + 0.5; x >= 0: h = 3x + 0.5.
        assert_eq!(net.forward(-2.0), -1.5);
        assert_eq!(net.forward(0.0), 0.5);
        assert_eq!(net.forward(1.0), 3.5);
    }

    #[test]
    fn dead_units_excluded_from_kinks() {
        let net = ReluNet1d {
            w1: vec![0.0, 1.0],
            b1: vec![1.0, -2.0],
            w2: vec![1.0, 1.0],
            a: 0.0,
            c: 0.0,
        };
        assert_eq!(net.kinks(), vec![2.0]);
    }

    #[test]
    fn batched_forward_equals_scalar() {
        use gqa_funcs::BatchEval;
        let mut rng = StdRng::seed_from_u64(9);
        for hidden in [1usize, 3, 7, 15] {
            let mut net = ReluNet1d::init(hidden, (-4.0, 4.0), &mut rng);
            net.a = 0.3;
            net.c = -0.2;
            let xs: Vec<f64> = (-90..=90).map(|i| i as f64 / 20.0).collect();
            let mut out = vec![0.0; xs.len()];
            net.forward_batch(&xs, &mut out);
            for (&x, &y) in xs.iter().zip(&out) {
                assert_eq!(y, net.forward(x), "hidden={hidden} x={x}");
            }
            // Trait path dispatches to the same kernel.
            assert_eq!(net.eval_to_vec(&xs), out);
        }
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize (p - 3)^2 with Adam: must converge to 3.
        let mut p = vec![0.0f64];
        let mut adam = AdamState::new(1);
        for _ in 0..2000 {
            let g = vec![2.0 * (p[0] - 3.0)];
            adam.step(&mut p, &g, 0.05);
        }
        assert!((p[0] - 3.0).abs() < 1e-3, "p = {}", p[0]);
    }
}
