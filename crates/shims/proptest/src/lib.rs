//! Offline stand-in for the `proptest` crate.
//!
//! No crates.io access is available in the build environment, so this
//! crate implements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro, range and collection strategies,
//! [`Strategy::prop_map`], and the `prop_assert*` macros.
//!
//! Semantics: each `proptest!` test body runs [`NUM_CASES`] times with
//! inputs drawn from the strategies using a deterministic per-test RNG
//! (seeded from the test body's position in the source). There is no
//! shrinking — a failing case panics with the ordinary assertion message,
//! which is enough for CI triage in this repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases each property runs. Matches proptest's default order of
/// magnitude while keeping the suite fast.
pub const NUM_CASES: usize = 96;

/// Builds the deterministic RNG for one property test.
///
/// The seed mixes an env override (`GQA_PROPTEST_SEED`) so soak runs can
/// explore different streams without recompiling.
#[must_use]
pub fn test_rng(test_name: &str) -> StdRng {
    let base: u64 = std::env::var("GQA_PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x9A5A_5A5A_9A5Au64);
    let mut h = base ^ 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec()`] (subset of proptest's
    /// `SizeRange` conversions: exact length, `a..b`, `a..=b`).
    pub trait IntoSizeRange {
        /// The half-open `[lo, hi)` length range.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn into_size_range(self) -> Range<usize> {
            *self.start()..*self.end() + 1
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let len = len.into_size_range();
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The [`vec()`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common import surface (subset of `proptest::prelude`).
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes an ordinary test running the body [`NUM_CASES`] times.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __gqa_rng = $crate::test_rng(stringify!($name));
                for __gqa_case in 0..$crate::NUM_CASES {
                    let _ = __gqa_case;
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __gqa_rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = i64> {
        (0i64..100).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..7, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 7));
        }

        #[test]
        fn mapped_strategy(e in evens()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn mut_binding(mut v in crate::collection::vec(-1.0f64..1.0, 1..5)) {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
