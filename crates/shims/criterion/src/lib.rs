//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of criterion's API the workspace benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`] and
//! [`criterion_main!`] — on top of `std::time`.
//!
//! Each benchmark is warmed up, then measured in adaptive rounds until the
//! measurement budget (default 300 ms, `GQA_BENCH_MS` to override) is
//! spent; the reported figure is the median of per-round mean ns/iter.
//!
//! In addition to the human-readable report, the harness appends every
//! result to a JSON file when `GQA_BENCH_JSON` names a path (see
//! `BENCH_baseline.json` at the repository root for the committed
//! baseline), so performance trajectories have a measured origin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints for [`Bencher::iter_batched`]. The shim treats them
/// identically (one setup per measured invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id as passed to [`Criterion::bench_function`].
    pub name: String,
    /// Median of per-round mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

impl BenchResult {
    /// Iterations per second implied by the measurement.
    #[must_use]
    pub fn throughput_per_sec(&self) -> f64 {
        if self.ns_per_iter > 0.0 {
            1.0e9 / self.ns_per_iter
        } else {
            f64::INFINITY
        }
    }
}

/// The benchmark driver (subset of criterion's type of the same name).
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Fresh driver.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one benchmark and records (and prints) its result.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        // Warm-up pass: lets one-time setup (page faults, lazy init) settle
        // and calibrates the iteration count for the measured rounds.
        f(&mut bencher);
        bencher.begin_measurement();
        while !bencher.budget_spent() {
            f(&mut bencher);
        }
        let result = bencher.finish(name);
        println!(
            "bench {:<48} {:>14.1} ns/iter  ({} iters)",
            result.name, result.ns_per_iter, result.iterations
        );
        self.results.push(result);
        self
    }

    /// Records an externally measured result (and prints it) alongside the
    /// `bench_function` measurements — for metrics the iterate-a-closure
    /// harness cannot express, like latency percentiles extracted from a
    /// histogram after a sustained load run. `ns_per_iter` carries the
    /// metric in nanoseconds; `iterations` the number of samples behind it.
    pub fn record(&mut self, name: &str, ns_per_iter: f64, iterations: u64) -> &mut Self {
        let result = BenchResult {
            name: name.to_owned(),
            ns_per_iter,
            iterations,
        };
        println!(
            "bench {:<48} {:>14.1} ns/iter  ({} iters)",
            result.name, result.ns_per_iter, result.iterations
        );
        self.results.push(result);
        self
    }

    /// All results recorded so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes results as a JSON array to `path` (append-merging with an
    /// existing file produced by an earlier bench binary in the same run).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading or writing the file.
    pub fn export_json(&self, path: &str) -> std::io::Result<()> {
        let mut entries: Vec<String> = match std::fs::read_to_string(path) {
            Ok(prev) => prev
                .lines()
                .filter(|l| l.trim_start().starts_with('{'))
                .map(|l| l.trim().trim_end_matches(',').to_owned())
                .collect(),
            Err(_) => Vec::new(),
        };
        for r in &self.results {
            // Replace stale entries for re-run benchmarks.
            let needle = format!("\"name\": \"{}\"", r.name);
            entries.retain(|e| !e.contains(&needle));
            entries.push(format!(
                "{{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters_per_sec\": {:.1}, \"iterations\": {}}}",
                r.name,
                r.ns_per_iter,
                r.throughput_per_sec(),
                r.iterations
            ));
        }
        let mut out = String::from("[\n");
        for (i, e) in entries.iter().enumerate() {
            out.push_str("  ");
            out.push_str(e);
            if i + 1 < entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        std::fs::write(path, out)
    }
}

/// Timing state handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    measuring: bool,
    iters_per_round: u64,
    round_means_ns: Vec<f64>,
    total_iters: u64,
    deadline: Option<Instant>,
}

impl Bencher {
    fn new() -> Self {
        Self {
            measuring: false,
            iters_per_round: 1,
            round_means_ns: Vec::new(),
            total_iters: 0,
            deadline: None,
        }
    }

    fn budget_ms() -> u64 {
        std::env::var("GQA_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300)
    }

    fn begin_measurement(&mut self) {
        self.measuring = true;
        self.round_means_ns.clear();
        self.total_iters = 0;
        self.deadline = Some(Instant::now() + Duration::from_millis(Self::budget_ms()));
    }

    fn budget_spent(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d) && !self.round_means_ns.is_empty()
    }

    fn record_round(&mut self, elapsed: Duration, iters: u64) {
        let ns = elapsed.as_nanos() as f64 / iters as f64;
        if self.measuring {
            self.round_means_ns.push(ns);
            self.total_iters += iters;
        } else {
            // Calibration: size rounds to ~25 ms each.
            let target_ns = 25.0e6;
            let per_iter = ns.max(0.5);
            self.iters_per_round = ((target_ns / per_iter) as u64).clamp(1, 1 << 24);
        }
    }

    /// Times `routine`, amortizing the measurement over a round of
    /// iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = if self.measuring {
            self.iters_per_round
        } else {
            1
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.record_round(start.elapsed(), iters);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = if self.measuring {
            self.iters_per_round
        } else {
            1
        };
        let mut elapsed = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.record_round(elapsed, iters);
    }

    fn finish(mut self, name: &str) -> BenchResult {
        self.round_means_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = if self.round_means_ns.is_empty() {
            0.0
        } else {
            self.round_means_ns[self.round_means_ns.len() / 2]
        };
        BenchResult {
            name: name.to_owned(),
            ns_per_iter: median,
            iterations: self.total_iters,
        }
    }
}

/// Declares a benchmark group: `criterion_group!(name, fn1, fn2, …)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench entry point: runs every group, honours
/// `--bench`/`--test` harness arguments, and exports JSON when
/// `GQA_BENCH_JSON` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` invokes the harness with `--test`;
            // run nothing in that mode (matches criterion's behaviour of
            // compiling but skipping).
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            let mut c = $crate::Criterion::new();
            $($group(&mut c);)+
            if let Ok(path) = std::env::var("GQA_BENCH_JSON") {
                if let Err(e) = c.export_json(&path) {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("GQA_BENCH_MS", "30");
        let mut c = Criterion::new();
        c.bench_function("shim/noop_loop", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        let r = &c.results()[0];
        assert!(r.ns_per_iter > 0.0);
        assert!(r.iterations > 0);
    }

    #[test]
    fn batched_excludes_setup() {
        std::env::set_var("GQA_BENCH_MS", "30");
        let mut c = Criterion::new();
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(c.results().len(), 1);
    }

    #[test]
    fn json_export_round_trip() {
        std::env::set_var("GQA_BENCH_MS", "30");
        let mut c = Criterion::new();
        c.bench_function("shim/json", |b| b.iter(|| black_box(1 + 1)));
        let path = std::env::temp_dir().join("gqa_bench_shim_test.json");
        let path = path.to_str().unwrap();
        c.export_json(path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"name\": \"shim/json\""));
        assert!(text.trim_start().starts_with('['));
        std::fs::remove_file(path).ok();
    }
}
