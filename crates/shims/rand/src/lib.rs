//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the small subset of the `rand 0.8` API the GQA-LUT
//! crates actually use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen_range` / `gen_bool` / `gen`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the exact
//! construction recommended by its authors — so streams are deterministic,
//! well distributed, and identical on every platform. It is **not** the
//! same stream as upstream `StdRng` (ChaCha12); all in-repo consumers only
//! rely on determinism under a fixed seed, never on a specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can produce raw random words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range. Panics if the range is empty, matching
    /// upstream behaviour.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }

    /// A sample of a uniformly distributed value (`f64`/`f32` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a "standard" uniform distribution (subset of
/// `rand::distributions::Standard` coverage).
pub trait Standard: Sized {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types [`Rng::gen_range`] can sample uniformly (mirrors
/// `rand::distributions::uniform::SampleUniform` in shape so type
/// inference behaves identically: one blanket range impl per range kind).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + std::fmt::Debug> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range {:?}", self);
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + std::fmt::Debug> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {:?}", self);
        T::sample_uniform(lo, hi, true, rng)
    }
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 top bits -> [0, 1) with full double precision.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to an exclusive end.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let draw = widening_mod(rng.next_u64(), span);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// `word % span` via 128-bit widening multiply (Lemire reduction) — avoids
/// the worst of plain-modulo bias while staying branch-free.
#[inline]
fn widening_mod(word: u64, span: u128) -> u128 {
    (word as u128 * span) >> 64
}

/// The generators module (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the workspace's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, per Blackman & Vigna.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0u64..u64::MAX), c.gen_range(0u64..u64::MAX));
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&f));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&j));
            let g = rng.gen_range(0.0f32..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn unit_interval_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo_seen |= u < 0.1;
            hi_seen |= u > 0.9;
        }
        assert!(lo_seen && hi_seen, "draws did not cover the unit interval");
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn integer_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
