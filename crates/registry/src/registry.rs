//! The in-memory artifact registry: content-addressed cache with
//! single-flight build deduplication, LRU capacity bounds, and
//! hit/miss/build-time statistics.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use gqa_pwl::QuantAwareLut;

use crate::spec::{LutBuildError, LutKey, LutSpec};

/// One cached artifact slot.
enum Slot {
    /// Finished artifact plus its recency stamp.
    Ready {
        lut: Arc<QuantAwareLut>,
        last_used: u64,
    },
    /// A build for this key is in flight on some thread; waiters block on
    /// the registry condvar until it flips to `Ready` (or disappears, if
    /// the building thread panicked).
    Building,
}

#[derive(Default)]
struct StatsInner {
    hits: u64,
    misses: u64,
    builds: u64,
    dedup_waits: u64,
    evictions: u64,
    build_ns: u128,
}

/// A point-in-time copy of the registry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Lookups resolved from a finished artifact — including a thread
    /// that joined an in-flight build and picked up the result once it
    /// turned `Ready` (such a join also bumps `dedup_waits`).
    pub hits: u64,
    /// Lookups that initiated a cold build themselves.
    pub misses: u64,
    /// Cold compilations actually executed.
    pub builds: u64,
    /// Times a thread waited on another thread's in-flight build instead
    /// of duplicating it (single-flight saves).
    pub dedup_waits: u64,
    /// Entries dropped by the LRU capacity bound.
    pub evictions: u64,
    /// Total nanoseconds spent in cold compilations.
    pub build_ns: u128,
}

impl RegistryStats {
    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Mean cold-build wall time in milliseconds (0 when nothing built).
    #[must_use]
    pub fn mean_build_ms(&self) -> f64 {
        if self.builds == 0 {
            0.0
        } else {
            self.build_ns as f64 / self.builds as f64 / 1.0e6
        }
    }
}

impl std::fmt::Display for RegistryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits {} / misses {} ({:.0}% hit rate), {} builds ({:.1} ms avg), \
             {} dedup waits, {} evictions",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.builds,
            self.mean_build_ms(),
            self.dedup_waits,
            self.evictions
        )
    }
}

struct Inner {
    map: HashMap<LutKey, Slot>,
    /// Monotone recency clock (bumped on every touch).
    tick: u64,
    stats: StatsInner,
}

/// The LUT artifact registry.
///
/// * **Content-addressed**: artifacts are cached under [`LutKey`]s, which
///   fold in the derived search/training config fingerprint.
/// * **Single-flight**: concurrent requests for the same key run one
///   build; the rest block and share the result.
/// * **Bounded**: an optional LRU capacity evicts the least recently used
///   *finished* artifact when exceeded (in-flight builds are never
///   evicted).
/// * **Observable**: [`LutRegistry::stats`] exposes hit/miss/build-time
///   counters; bench binaries print them.
///
/// Interior-mutable: every method takes `&self`, so one registry can be
/// shared freely (e.g. the process-wide [`LutRegistry::global`]).
pub struct LutRegistry {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: Option<usize>,
}

impl Default for LutRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LutRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry lock");
        f.debug_struct("LutRegistry")
            .field("entries", &inner.map.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl LutRegistry {
    /// Unbounded registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                stats: StatsInner::default(),
            }),
            ready: Condvar::new(),
            capacity: None,
        }
    }

    /// Registry holding at most `capacity` finished artifacts (LRU
    /// eviction beyond that).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        Self {
            capacity: Some(capacity),
            ..Self::new()
        }
    }

    /// The process-wide shared registry (the `build_lut`-family free
    /// functions in `gqa-models` route through it). On first access,
    /// warm-starts from the JSON snapshot named by the
    /// `GQA_LUT_SNAPSHOT` environment variable, when set and readable.
    ///
    /// # Example
    ///
    /// ```
    /// use gqa_registry::{LutRegistry, LutSpec, Method};
    /// use gqa_funcs::NonLinearOp;
    ///
    /// let registry = LutRegistry::global();
    /// let spec = LutSpec::new(Method::GqaRm, NonLinearOp::Exp, 8, 123).with_budget(0.05);
    /// let first = registry.get_or_build(&spec).unwrap();   // cold: runs the search
    /// let again = registry.get_or_build(&spec).unwrap();   // warm: zero generations
    /// assert!(std::sync::Arc::ptr_eq(&first, &again));
    /// // Every process sees the same instance.
    /// assert!(std::ptr::eq(LutRegistry::global(), registry));
    /// ```
    #[must_use]
    pub fn global() -> &'static LutRegistry {
        static GLOBAL: OnceLock<LutRegistry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let reg = LutRegistry::new();
            if let Ok(path) = std::env::var("GQA_LUT_SNAPSHOT") {
                // A missing/stale/corrupt snapshot must never poison startup.
                let _ = reg.load_snapshot(&path);
            }
            reg
        })
    }

    /// Number of finished artifacts currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }

    /// Whether no finished artifact is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every finished artifact (in-flight builds are unaffected and
    /// will re-insert on completion). Stats are preserved.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.map.retain(|_, s| matches!(s, Slot::Building));
    }

    /// All finished artifacts (for snapshot serialization).
    pub(crate) fn ready_entries(&self) -> Vec<(LutKey, Arc<QuantAwareLut>)> {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .map
            .iter()
            .filter_map(|(k, s)| match s {
                Slot::Ready { lut, .. } => Some((*k, Arc::clone(lut))),
                Slot::Building => None,
            })
            .collect()
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry lock");
        let s = &inner.stats;
        RegistryStats {
            hits: s.hits,
            misses: s.misses,
            builds: s.builds,
            dedup_waits: s.dedup_waits,
            evictions: s.evictions,
            build_ns: s.build_ns,
        }
    }

    /// Cache-only lookup (bumps recency on hit, never builds).
    #[must_use]
    pub fn get(&self, key: &LutKey) -> Option<Arc<QuantAwareLut>> {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(Slot::Ready { lut, last_used }) => {
                *last_used = tick;
                Some(Arc::clone(lut))
            }
            _ => None,
        }
    }

    /// Inserts a pre-built artifact (e.g. from a snapshot or a test),
    /// overwriting any finished entry for the key.
    pub fn insert(&self, key: LutKey, lut: QuantAwareLut) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Slot::Ready {
                lut: Arc::new(lut),
                last_used: tick,
            },
        );
        self.enforce_capacity(&mut inner);
    }

    /// The registry front door: returns the cached artifact for the spec,
    /// builds it (once, even under concurrency) on miss.
    ///
    /// # Errors
    ///
    /// Returns [`LutBuildError`] if the spec fails validation. Build
    /// execution itself is infallible.
    pub fn get_or_build(&self, spec: &LutSpec) -> Result<Arc<QuantAwareLut>, LutBuildError> {
        let key = spec.key()?;
        self.get_or_build_with(key, || spec.compile().expect("spec validated above"))
    }

    /// [`LutRegistry::get_or_build`] with a caller-supplied cold-build
    /// closure — the seam for custom artifacts (or instrumented builds in
    /// tests). The closure runs outside the registry lock.
    pub fn get_or_build_with<F>(
        &self,
        key: LutKey,
        build: F,
    ) -> Result<Arc<QuantAwareLut>, LutBuildError>
    where
        F: FnOnce() -> QuantAwareLut,
    {
        {
            let mut inner = self.inner.lock().expect("registry lock");
            loop {
                inner.tick += 1;
                let tick = inner.tick;
                match inner.map.get_mut(&key) {
                    Some(Slot::Ready { lut, last_used }) => {
                        *last_used = tick;
                        let lut = Arc::clone(lut);
                        inner.stats.hits += 1;
                        return Ok(lut);
                    }
                    Some(Slot::Building) => {
                        // Single-flight: join the in-flight build.
                        inner.stats.dedup_waits += 1;
                        inner = self.ready.wait(inner).expect("registry lock");
                        // Re-check from the top: the build finished (Ready)
                        // or its thread panicked (slot removed → we build).
                    }
                    None => {
                        inner.stats.misses += 1;
                        inner.map.insert(key, Slot::Building);
                        break;
                    }
                }
            }
        }

        // Cold path, outside the lock. The guard flips the Building slot
        // back out if `build` panics, so waiters are never stranded.
        let mut guard = BuildGuard {
            registry: self,
            key,
            armed: true,
        };
        let t0 = Instant::now();
        let lut = Arc::new(build());
        let elapsed = t0.elapsed().as_nanos();
        self.finish_build(key, Arc::clone(&lut), elapsed);
        guard.armed = false;
        Ok(lut)
    }

    fn finish_build(&self, key: LutKey, lut: Arc<QuantAwareLut>, build_ns: u128) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.tick += 1;
        let tick = inner.tick;
        inner.stats.builds += 1;
        inner.stats.build_ns += build_ns;
        inner.map.insert(
            key,
            Slot::Ready {
                lut,
                last_used: tick,
            },
        );
        self.enforce_capacity(&mut inner);
        drop(inner);
        self.ready.notify_all();
    }

    /// Evicts least-recently-used finished artifacts until the capacity
    /// bound holds. In-flight builds never count against (or fall to) the
    /// bound.
    fn enforce_capacity(&self, inner: &mut Inner) {
        let Some(cap) = self.capacity else { return };
        loop {
            let ready = inner
                .map
                .iter()
                .filter(|(_, s)| matches!(s, Slot::Ready { .. }))
                .count();
            if ready <= cap {
                return;
            }
            let victim = inner
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } => Some((*last_used, *k)),
                    Slot::Building => None,
                })
                .min_by_key(|(used, _)| *used)
                .map(|(_, k)| k)
                .expect("ready > cap >= 1 implies a victim");
            inner.map.remove(&victim);
            inner.stats.evictions += 1;
        }
    }
}

/// Panic-safety for in-flight builds: if the build closure unwinds, the
/// `Building` placeholder is removed and waiters are woken so one of them
/// can retry instead of deadlocking.
struct BuildGuard<'a> {
    registry: &'a LutRegistry,
    key: LutKey,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if let Ok(mut inner) = self.registry.inner.lock() {
            if matches!(inner.map.get(&self.key), Some(Slot::Building)) {
                inner.map.remove(&self.key);
            }
        }
        self.registry.ready.notify_all();
    }
}
