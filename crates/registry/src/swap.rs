//! Hot-swappable serving backend: an atomically replaceable
//! [`UnaryBackend`] so a live model graph can move between exact math and
//! freshly compiled LUT datapaths without rebuilding the graph.

use std::sync::{Arc, RwLock};

use gqa_tensor::{ExactBackend, UnaryBackend, UnaryKind};

/// A [`UnaryBackend`] indirection cell. The graph holds `&HotSwapBackend`
/// for its whole lifetime; operators resolve through the currently
/// installed delegate on every tensor-level call, so a [`swap`] between
/// two forward passes changes the serving datapath in place.
///
/// Reads take a shared lock per *tensor* operation (the graph batches
/// per-tensor, not per-element) only long enough to clone the delegate
/// `Arc` — the delegate itself runs with the lock released, so a
/// [`swap`] never blocks behind an in-flight evaluation (and a delegate
/// may even trigger a swap from inside its own evaluation, which the
/// swap-under-fused-eval tests exploit). Overhead is a few nanoseconds
/// per operator application.
///
/// [`swap`]: HotSwapBackend::swap
pub struct HotSwapBackend {
    current: RwLock<Arc<dyn UnaryBackend>>,
}

impl Default for HotSwapBackend {
    fn default() -> Self {
        Self::new(Arc::new(ExactBackend))
    }
}

impl std::fmt::Debug for HotSwapBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotSwapBackend").finish_non_exhaustive()
    }
}

impl HotSwapBackend {
    /// Cell initially serving through `initial`.
    #[must_use]
    pub fn new(initial: Arc<dyn UnaryBackend>) -> Self {
        Self {
            current: RwLock::new(initial),
        }
    }

    /// Installs `next` as the serving backend and returns the previous
    /// one. In-flight tensor operations finish on whichever delegate they
    /// resolved; subsequent operations use `next`.
    pub fn swap(&self, next: Arc<dyn UnaryBackend>) -> Arc<dyn UnaryBackend> {
        let mut guard = self.current.write().expect("backend lock");
        std::mem::replace(&mut *guard, next)
    }

    /// The currently installed delegate.
    #[must_use]
    pub fn current(&self) -> Arc<dyn UnaryBackend> {
        Arc::clone(&self.current.read().expect("backend lock"))
    }
}

impl UnaryBackend for HotSwapBackend {
    fn eval(&self, kind: UnaryKind, x: f64) -> f64 {
        self.current().eval(kind, x)
    }

    fn eval_many(&self, kind: UnaryKind, xs: &[f64], out: &mut [f64]) {
        self.current().eval_many(kind, xs, out);
    }

    /// Resolves the delegate **once per tensor stage**, not once per
    /// staging chunk or per row: the whole buffer is evaluated by a single
    /// backend even if a [`swap`](HotSwapBackend::swap) lands mid-call, so
    /// a tensor never mixes two datapaths (the swap-under-eval guarantee;
    /// pinned by `tests/hotswap.rs`).
    ///
    /// The delegate `Arc` is cloned and the lock released *before* the
    /// delegate runs (see the impl note on the other methods too), which
    /// is what "swap-under-fused-eval" relies on: a fused
    /// softmax/LayerNorm node makes one such call per non-linear stage
    /// (EXP, then DIV; or RSQRT), a swap may land between those stages
    /// without blocking behind the in-flight evaluation — and because the
    /// unfused assemblies make the *same* sequence of tensor-level calls,
    /// a swap at any point leaves fused and unfused outputs bit-identical.
    fn eval_many_f32(&self, kind: UnaryKind, xs: &[f32], out: &mut [f32]) {
        self.current().eval_many_f32(kind, xs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstBackend(f64);

    impl UnaryBackend for ConstBackend {
        fn eval(&self, _kind: UnaryKind, _x: f64) -> f64 {
            self.0
        }
    }

    #[test]
    fn defaults_to_exact() {
        let hs = HotSwapBackend::default();
        assert_eq!(hs.eval(UnaryKind::Recip, 4.0), 0.25);
    }

    #[test]
    fn swap_changes_datapath_in_place() {
        let hs = HotSwapBackend::default();
        assert_eq!(hs.eval(UnaryKind::Relu, -1.0), 0.0);
        let prev = hs.swap(Arc::new(ConstBackend(7.0)));
        assert_eq!(hs.eval(UnaryKind::Relu, -1.0), 7.0);
        let mut out = [0.0; 3];
        hs.eval_many(UnaryKind::Gelu, &[1.0, 2.0, 3.0], &mut out);
        assert_eq!(out, [7.0; 3]);
        // Restore.
        hs.swap(prev);
        assert_eq!(hs.eval(UnaryKind::Relu, -1.0), 0.0);
    }
}
