//! # gqa-registry — the LUT artifact registry
//!
//! LUT compilation as a first-class, cached pipeline. Before this layer
//! existed, every `PwlBackend::build` and `build_lut` call re-ran the full
//! genetic search (or NN-LUT training) even when an identical artifact had
//! just been produced; the registry makes artifacts **content-addressed**
//! and turns repeat builds into cache hits:
//!
//! ```text
//!   LutSpec ── key() ──▶ LutKey ── LutRegistry::get_or_build ─▶ Arc<QuantAwareLut>
//!   (method, op,         content      │ hit: return cached artifact
//!    entries, seed,      address      │ miss: single-flight cold compile
//!    budget)                          ▼        (island genetic search /
//!                                  stats        NN-LUT training)
//! ```
//!
//! * [`LutSpec`] / [`LutKey`] — the request and its content address. The
//!   key folds in a fingerprint of the fully derived search/training
//!   configuration, so config changes change artifact identity.
//! * [`LutRegistry`] — interior-mutable cache: single-flight build
//!   deduplication (concurrent requests for one key run one build), LRU
//!   capacity bounds, hit/miss/build-time [`RegistryStats`], and a
//!   process-wide [`LutRegistry::global`] instance.
//! * [`LutBuildError`] — typed validation failure (zero/out-of-domain
//!   budget, unsupported entry count) instead of a panic deep in the
//!   search.
//! * JSON snapshots ([`LutRegistry::save_snapshot`] /
//!   [`LutRegistry::load_snapshot`], plus the in-memory
//!   [`LutRegistry::snapshot_json`] / [`LutRegistry::load_snapshot_json`]
//!   pair and the per-key-filtered
//!   [`LutRegistry::snapshot_json_where`]) with bit-exact f64
//!   round-tripping, so bench binaries warm-start (`GQA_LUT_SNAPSHOT`
//!   env var) and the serving engine shards its store per operator.
//! * [`HotSwapBackend`] — an atomically replaceable serving backend, so a
//!   live model graph hops between exact math and freshly compiled LUT
//!   datapaths without rebuilding the graph.
//!
//! ## Example
//!
//! ```
//! use gqa_registry::{LutRegistry, LutSpec, Method};
//! use gqa_funcs::NonLinearOp;
//!
//! let registry = LutRegistry::new();
//! let spec = LutSpec::new(Method::GqaRm, NonLinearOp::Gelu, 8, 42).with_budget(0.05);
//! let cold = registry.get_or_build(&spec).unwrap();
//! let warm = registry.get_or_build(&spec).unwrap();   // cache hit, no search
//! assert!(std::sync::Arc::ptr_eq(&cold, &warm));
//! assert_eq!(registry.stats().hits, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod method;
mod registry;
mod snapshot;
mod spec;
mod swap;

pub use method::Method;
pub use registry::{LutRegistry, RegistryStats};
pub use snapshot::{fnv1a_64, snapshot_content_hash, SnapshotError, SNAPSHOT_VERSION};
pub use spec::{LutBuildError, LutKey, LutSpec, PIPELINE_VERSION};
pub use swap::HotSwapBackend;
