//! JSON snapshot of a registry's finished artifacts, so bench binaries
//! and services can warm-start instead of re-running searches.
//!
//! The format is versioned and fully self-contained: each entry carries
//! its [`LutKey`] plus the artifact parameters with every `f64` encoded
//! as raw IEEE-754 bits (decimal `u64`), so a load reconstructs the LUT
//! **bit-exactly** — no decimal round-tripping. The writer/reader below
//! are a deliberately small hand-rolled JSON subset (the build
//! environment has no serde): objects, arrays, strings without escapes,
//! and unsigned integers, which is exactly what the format uses.

use std::fmt;
use std::path::Path;
use std::str::FromStr;
use std::sync::Arc;

use gqa_funcs::NonLinearOp;
use gqa_pwl::{Pwl, QuantAwareLut};

use crate::method::Method;
use crate::registry::LutRegistry;
use crate::spec::LutKey;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Failure to load a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The JSON could not be parsed (position, message).
    Parse(usize, String),
    /// The snapshot's version field is unsupported.
    BadVersion(u64),
    /// The snapshot was written by a different compilation-pipeline
    /// revision; its artifacts could never be cache-hit under current
    /// keys, so loading them would only bloat the registry.
    StalePipeline(u64),
    /// A required field was missing or had the wrong type.
    BadField(String),
    /// An entry named an unknown method or operator.
    UnknownIdent(String),
    /// The stored LUT parameters were internally inconsistent.
    BadArtifact(String),
    /// Reading or writing the snapshot file failed (the underlying
    /// `io::Error` rendered to text, so the error stays `Clone + Eq`).
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Parse(at, msg) => write!(f, "snapshot parse error at byte {at}: {msg}"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::StalePipeline(v) => write!(
                f,
                "snapshot was built by pipeline revision {v} (current: {})",
                crate::spec::PIPELINE_VERSION
            ),
            SnapshotError::BadField(name) => write!(f, "missing or malformed field `{name}`"),
            SnapshotError::UnknownIdent(s) => write!(f, "unknown method/operator `{s}`"),
            SnapshotError::BadArtifact(msg) => write!(f, "invalid stored artifact: {msg}"),
            SnapshotError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl LutRegistry {
    /// Serializes every finished artifact to the snapshot JSON format.
    /// Deterministic: entries are ordered by their key's display form.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        self.snapshot_json_where(|_| true)
    }

    /// [`LutRegistry::snapshot_json`] restricted to the keys `keep`
    /// accepts — the seam the serving engine's **per-operator snapshot
    /// shards** are written through (one file per operator, each a
    /// complete, independently loadable snapshot).
    #[must_use]
    pub fn snapshot_json_where(&self, keep: impl Fn(&LutKey) -> bool) -> String {
        let mut entries = self.ready_entries();
        entries.retain(|(k, _)| keep(k));
        entries.sort_by_key(|(k, _)| k.to_string());
        let mut body = String::with_capacity(entries.len() * 512 + 64);
        body.push_str("  \"entries\": [");
        for (i, (key, lut)) in entries.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str("\n    ");
            write_entry(&mut body, key, lut);
        }
        if entries.is_empty() {
            body.push_str("]\n}\n");
        } else {
            body.push_str("\n  ]\n}\n");
        }
        // The header's content hash covers the serialized entries, so two
        // snapshots with identical artifacts carry identical hashes no
        // matter when or where they were written (the writer is
        // deterministic). Readers that only need change detection can
        // compare hashes from the file prefix without parsing entries.
        let hash = fnv1a_64(body.as_bytes());
        let mut out = String::with_capacity(128 + body.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {SNAPSHOT_VERSION},\n"));
        out.push_str(&format!(
            "  \"pipeline\": {},\n",
            crate::spec::PIPELINE_VERSION
        ));
        out.push_str(&format!("  \"content_hash\": {hash},\n"));
        out.push_str(&body);
        out
    }

    /// Saves [`LutRegistry::snapshot_json`] to a file.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the write fails.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        std::fs::write(path, self.snapshot_json())
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))
    }

    /// Loads artifacts from a snapshot file into the registry (overwriting
    /// finished entries with equal keys). Returns the number of artifacts
    /// loaded. For already-in-memory JSON use
    /// [`LutRegistry::load_snapshot_json`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the file cannot be read, or any
    /// [`SnapshotError`] from parsing its contents.
    pub fn load_snapshot(&self, path: impl AsRef<Path>) -> Result<usize, SnapshotError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
        self.load_snapshot_json(&json)
    }

    /// Loads artifacts from snapshot JSON into the registry (overwriting
    /// finished entries with equal keys). Returns the number of artifacts
    /// loaded.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on malformed input; on error nothing
    /// further is inserted but earlier entries of the same snapshot may
    /// already have landed.
    pub fn load_snapshot_json(&self, json: &str) -> Result<usize, SnapshotError> {
        let value = parse_json(json)?;
        let obj = value.as_obj().ok_or_else(|| bad("root"))?;
        let version = find(obj, "version")
            .and_then(Value::as_u64)
            .ok_or_else(|| bad("version"))?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        // Refuse snapshots from other pipeline revisions outright: their
        // keys embed the old revision and can never be cache-hit, so
        // loading (and later re-saving) them would accrete dead artifacts
        // across pipeline bumps.
        let pipeline = find(obj, "pipeline")
            .and_then(Value::as_u64)
            .ok_or_else(|| bad("pipeline"))?;
        if pipeline != crate::spec::PIPELINE_VERSION {
            return Err(SnapshotError::StalePipeline(pipeline));
        }
        let entries = find(obj, "entries")
            .and_then(Value::as_arr)
            .ok_or_else(|| bad("entries"))?;
        let mut loaded = 0usize;
        for e in entries {
            let (key, lut) = read_entry(e.as_obj().ok_or_else(|| bad("entry"))?)?;
            self.insert(key, lut);
            loaded += 1;
        }
        Ok(loaded)
    }
}

fn bad(name: &str) -> SnapshotError {
    SnapshotError::BadField(name.to_owned())
}

/// 64-bit FNV-1a over a byte string — the hash function behind the
/// snapshot header's `content_hash` field.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extracts the `content_hash` header field from snapshot JSON **without
/// parsing the entries** — only the header prefix (everything before the
/// `"entries"` key) is scanned, so callers may pass a truncated prefix of
/// the file. Returns `None` for snapshots written before the field
/// existed.
#[must_use]
pub fn snapshot_content_hash(json_prefix: &str) -> Option<u64> {
    let header_end = json_prefix.find("\"entries\"").unwrap_or(json_prefix.len());
    let header = &json_prefix[..header_end];
    let at = header.find("\"content_hash\"")? + "\"content_hash\"".len();
    let rest = header[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn write_entry(out: &mut String, key: &LutKey, lut: &Arc<QuantAwareLut>) {
    let bits = |vs: &[f64]| -> String {
        let parts: Vec<String> = vs.iter().map(|v| v.to_bits().to_string()).collect();
        format!("[{}]", parts.join(", "))
    };
    out.push_str(&format!(
        "{{\"method\": \"{}\", \"op\": \"{}\", \"entries\": {}, \"seed\": {}, \
         \"range_bits\": [{}, {}], \"lambda\": {}, \
         \"config_hash\": {}, \"lut\": {{\"lambda\": {}, \"slopes\": {}, \
         \"intercepts\": {}, \"breakpoints\": {}}}}}",
        key.method.ident(),
        key.op.name(),
        key.entries,
        key.seed,
        key.range_bits.0,
        key.range_bits.1,
        key.lambda,
        key.config_hash,
        lut.lambda(),
        bits(lut.pwl().slopes()),
        bits(lut.pwl().intercepts()),
        bits(lut.pwl().breakpoints()),
    ));
}

fn read_entry(obj: &[(String, Value)]) -> Result<(LutKey, QuantAwareLut), SnapshotError> {
    let get_u64 = |name: &str| {
        find(obj, name)
            .and_then(Value::as_u64)
            .ok_or_else(|| bad(name))
    };
    let get_str = |name: &str| {
        find(obj, name)
            .and_then(Value::as_str)
            .ok_or_else(|| bad(name))
    };

    let method_ident = get_str("method")?;
    let method = Method::from_ident(method_ident)
        .ok_or_else(|| SnapshotError::UnknownIdent(method_ident.to_owned()))?;
    let op_name = get_str("op")?;
    let op = NonLinearOp::from_str(op_name)
        .map_err(|_| SnapshotError::UnknownIdent(op_name.to_owned()))?;
    let range = find(obj, "range_bits")
        .and_then(Value::as_arr)
        .filter(|a| a.len() == 2)
        .ok_or_else(|| bad("range_bits"))?;
    let key = LutKey {
        method,
        op,
        entries: get_u64("entries")? as usize,
        seed: get_u64("seed")?,
        range_bits: (
            range[0].as_u64().ok_or_else(|| bad("range_bits"))?,
            range[1].as_u64().ok_or_else(|| bad("range_bits"))?,
        ),
        lambda: u32::try_from(get_u64("lambda")?).map_err(|_| bad("lambda"))?,
        config_hash: get_u64("config_hash")?,
    };

    let lut_obj = find(obj, "lut")
        .and_then(Value::as_obj)
        .ok_or_else(|| bad("lut"))?;
    let floats = |name: &str| -> Result<Vec<f64>, SnapshotError> {
        find(lut_obj, name)
            .and_then(Value::as_arr)
            .ok_or_else(|| bad(name))?
            .iter()
            .map(|v| v.as_u64().map(f64::from_bits).ok_or_else(|| bad(name)))
            .collect()
    };
    let lambda = find(lut_obj, "lambda")
        .and_then(Value::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| bad("lut.lambda"))?;
    let pwl = Pwl::new(
        floats("slopes")?,
        floats("intercepts")?,
        floats("breakpoints")?,
    )
    .map_err(|e| SnapshotError::BadArtifact(e.to_string()))?;
    // Stored parameters are already λ-rounded; the conversion here is
    // idempotent, so the reconstruction is bit-exact.
    let lut =
        QuantAwareLut::new(pwl, lambda).map_err(|e| SnapshotError::BadArtifact(e.to_string()))?;
    // A key must describe its payload: a mismatched entry (hand-edited or
    // corrupted snapshot) would otherwise be served as the wrong artifact
    // on every future cache hit for that key.
    if lut.num_entries() != key.entries {
        return Err(SnapshotError::BadArtifact(format!(
            "key says {} entries but the stored LUT has {}",
            key.entries,
            lut.num_entries()
        )));
    }
    if lut.lambda() != key.lambda {
        return Err(SnapshotError::BadArtifact(format!(
            "key says lambda {} but the stored LUT has {}",
            key.lambda,
            lut.lambda()
        )));
    }
    Ok((key, lut))
}

// --------------------------------------------------------------------------
// Minimal JSON subset reader: objects, arrays, strings (no escapes),
// unsigned integers, `true`/`false`/`null`. Enough for the snapshot format
// and deliberately strict about anything else.
// --------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Obj(Vec<(String, Value)>),
    Arr(Vec<Value>),
    Str(String),
    Num(u64),
    Bool(bool),
    Null,
}

impl Value {
    fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn find<'a>(obj: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

fn parse_json(s: &str) -> Result<Value, SnapshotError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        at: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> SnapshotError {
        SnapshotError::Parse(self.at, msg.to_owned())
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), SnapshotError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, SnapshotError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b'0'..=b'9' => self.number(),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            c => Err(self.err(&format!("unexpected `{}`", c as char))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, SnapshotError> {
        self.skip_ws();
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, SnapshotError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, SnapshotError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        self.expect(b'"')?;
        let start = self.at;
        while let Some(&b) = self.bytes.get(self.at) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.at])
                        .map_err(|_| self.err("invalid utf-8"))?
                        .to_owned();
                    self.at += 1;
                    return Ok(s);
                }
                b'\\' => return Err(self.err("escapes unsupported")),
                _ => self.at += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<Value, SnapshotError> {
        self.skip_ws();
        let start = self.at;
        while self.bytes.get(self.at).is_some_and(|b| b.is_ascii_digit()) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("digits");
        text.parse::<u64>()
            .map(Value::Num)
            .map_err(|_| self.err("number out of range"))
    }
}
