//! Build specifications, content-addressed keys, and the cold compile
//! path.
//!
//! A [`LutSpec`] is *what the caller asks for* (method, operator, entry
//! count, seed, budget). Validating it yields a [`LutKey`] — the
//! content address under which the finished artifact is cached. The key
//! folds in the fingerprint of the fully derived search/training
//! configuration, so any change to how specs expand into configs (new
//! hyper-parameter, different default) automatically changes artifact
//! identity instead of serving stale cache entries.

use std::fmt;

use gqa_funcs::NonLinearOp;
use gqa_genetic::{FitnessMode, GeneticSearch, SearchConfig};
use gqa_nnlut::{NnLutConfig, NnLutTrainer};
use gqa_pwl::QuantAwareLut;

use crate::method::Method;

/// Revision of the *compilation pipeline itself*, folded into every
/// [`LutKey`]'s content hash. Bump this whenever a change to the search
/// or training algorithms (mutation operators, fitness evaluation,
/// selection, NN-LUT optimizer, …) alters built artifacts **without**
/// touching any config field — otherwise snapshots written by the older
/// code would keep serving stale artifacts under matching keys.
pub const PIPELINE_VERSION: u64 = 2;

/// Typed failure of LUT compilation-request validation.
#[derive(Debug, Clone, PartialEq)]
pub enum LutBuildError {
    /// The requested entry count is outside the paper's {8, 16} set.
    UnsupportedEntries(usize),
    /// The budget multiplier is outside `(0, 1]` (zero, negative, above 1,
    /// or non-finite). A zero budget would otherwise truncate to an empty
    /// generation/sample schedule and panic deep inside the search.
    InvalidBudget(f64),
}

impl fmt::Display for LutBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LutBuildError::UnsupportedEntries(n) => {
                write!(f, "paper evaluates 8- and 16-entry LUTs (got {n})")
            }
            LutBuildError::InvalidBudget(b) => {
                write!(f, "budget must be in (0, 1] (got {b})")
            }
        }
    }
}

impl std::error::Error for LutBuildError {}

/// A LUT compilation request: everything that determines the artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutSpec {
    /// Construction method.
    pub method: Method,
    /// Target operator.
    pub op: NonLinearOp,
    /// LUT entries (8 or 16).
    pub entries: usize,
    /// RNG seed (searches/training are deterministic given it).
    pub seed: u64,
    /// Budget multiplier in `(0, 1]` scaling generations / training steps
    /// (1.0 = the paper's full budget).
    pub budget: f64,
}

impl LutSpec {
    /// Full-budget spec.
    #[must_use]
    pub fn new(method: Method, op: NonLinearOp, entries: usize, seed: u64) -> Self {
        Self {
            method,
            op,
            entries,
            seed,
            budget: 1.0,
        }
    }

    /// Sets the budget multiplier.
    #[must_use]
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.budget = budget;
        self
    }

    /// Validates the spec and derives its content-addressed cache key.
    ///
    /// # Errors
    ///
    /// Returns [`LutBuildError`] if the entry count or budget is out of
    /// domain.
    pub fn key(&self) -> Result<LutKey, LutBuildError> {
        if self.entries != 8 && self.entries != 16 {
            return Err(LutBuildError::UnsupportedEntries(self.entries));
        }
        if !self.budget.is_finite() || self.budget <= 0.0 || self.budget > 1.0 {
            return Err(LutBuildError::InvalidBudget(self.budget));
        }
        let (range, lambda, cfg_fingerprint) = match self.method {
            Method::NnLut => {
                let cfg = self.nnlut_config();
                (cfg.range, cfg.lambda, cfg.fingerprint())
            }
            Method::GqaNoRm | Method::GqaRm => {
                let cfg = self.search_config();
                (cfg.range, cfg.lambda, cfg.fingerprint())
            }
        };
        // Mix the pipeline version into the content hash so artifacts
        // built by an older algorithm revision (e.g. from a stale
        // GQA_LUT_SNAPSHOT) never alias current ones.
        let mut h = gqa_funcs::Fnv1a::new();
        h.eat(PIPELINE_VERSION);
        h.eat(cfg_fingerprint);
        Ok(LutKey {
            method: self.method,
            op: self.op,
            entries: self.entries,
            seed: self.seed,
            range_bits: (range.0.to_bits(), range.1.to_bits()),
            lambda,
            config_hash: h.finish(),
        })
    }

    /// The fully derived genetic-search configuration for a GQA spec
    /// (the paper's Table-1 values scaled by the budget).
    ///
    /// # Panics
    ///
    /// Panics if called for [`Method::NnLut`].
    #[must_use]
    pub fn search_config(&self) -> SearchConfig {
        let mut cfg = SearchConfig::for_op(self.op)
            .with_seed(self.seed)
            .with_generations(((500.0 * self.budget) as usize).max(40));
        if self.entries == 16 {
            cfg = cfg.with_entries_16();
        }
        match self.method {
            Method::GqaNoRm => {
                cfg = cfg.without_rounding_mutation();
            }
            Method::GqaRm if self.op.scale_dependent() => {
                cfg = cfg.with_fitness(FitnessMode::QuantAwareAverage);
            }
            Method::GqaRm => {}
            Method::NnLut => panic!("NN-LUT specs have no genetic search config"),
        }
        cfg
    }

    /// The fully derived NN-LUT training configuration.
    #[must_use]
    pub fn nnlut_config(&self) -> NnLutConfig {
        let mut cfg = NnLutConfig::for_op(self.op)
            .with_seed(self.seed)
            .with_steps(((4000.0 * self.budget) as usize).max(200))
            .with_samples(((100_000.0 * self.budget) as usize).max(2_000));
        // NN-LUT's procedure (ref. [11]) samples the operator's *actual*
        // input distribution. For the wide-range intermediates DIV and
        // RSQRT that distribution extends far beyond GQA-LUT's
        // breakpoint interval (GQA confines itself to the interval via
        // multi-range input scaling, §3.1); NN-LUT instead trains across
        // the wide range with its single-constant input scaling, and the
        // §4.1 conversion to 8-bit FXP breakpoints then saturates — the
        // cause of NN-LUT's poor DIV/RSQRT rows in Table 3.
        match self.op {
            NonLinearOp::Div => cfg.range = (0.5, 8.0),
            NonLinearOp::Rsqrt => cfg.range = (0.25, 16.0),
            _ => {}
        }
        if self.entries == 16 {
            cfg = cfg.with_entries_16();
        }
        cfg
    }

    /// Runs the full cold compilation (genetic search or NN-LUT training).
    /// Pure: the output depends only on the spec. Callers should prefer
    /// [`crate::LutRegistry::get_or_build`], which caches and deduplicates.
    ///
    /// # Errors
    ///
    /// Returns [`LutBuildError`] if the spec fails validation.
    pub fn compile(&self) -> Result<QuantAwareLut, LutBuildError> {
        // Surface domain errors before burning search time.
        let _ = self.key()?;
        Ok(match self.method {
            Method::NnLut => NnLutTrainer::new(self.nnlut_config()).train().lut().clone(),
            Method::GqaNoRm | Method::GqaRm => {
                GeneticSearch::new(self.search_config()).run().lut().clone()
            }
        })
    }
}

/// Content address of a compiled LUT artifact. Two equal keys are
/// guaranteed (by construction plus the config fingerprint and pipeline
/// version) to denote bit-identical artifacts. Deliberately, the raw
/// budget is **not** part of the identity: two budgets that clamp to the
/// same generation/step schedule derive equal config fingerprints and
/// produce bit-identical artifacts, so they dedupe to one cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LutKey {
    /// Construction method.
    pub method: Method,
    /// Target operator.
    pub op: NonLinearOp,
    /// LUT entries.
    pub entries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Raw bits of the approximation range `[Rn, Rp]` (provenance for
    /// snapshot debugging; always implied by `config_hash`).
    pub range_bits: (u64, u64),
    /// FXP fractional bit-width λ of the stored parameters.
    pub lambda: u32,
    /// Fingerprint of the fully derived search/training configuration,
    /// mixed with [`PIPELINE_VERSION`].
    pub config_hash: u64,
}

impl fmt::Display for LutKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}x{}@seed={},cfg={:016x}",
            self.method.ident(),
            self.op.name(),
            self.entries,
            self.seed,
            self.config_hash
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_is_a_typed_error() {
        let spec = LutSpec::new(Method::GqaRm, NonLinearOp::Gelu, 8, 1).with_budget(0.0);
        assert_eq!(spec.key(), Err(LutBuildError::InvalidBudget(0.0)));
        assert_eq!(spec.compile(), Err(LutBuildError::InvalidBudget(0.0)));
        let nan = LutSpec::new(Method::GqaRm, NonLinearOp::Gelu, 8, 1).with_budget(f64::NAN);
        assert!(matches!(nan.key(), Err(LutBuildError::InvalidBudget(_))));
    }

    #[test]
    fn bad_entry_count_is_a_typed_error() {
        let spec = LutSpec::new(Method::GqaRm, NonLinearOp::Gelu, 12, 1);
        assert_eq!(spec.key(), Err(LutBuildError::UnsupportedEntries(12)));
        let msg = spec.key().unwrap_err().to_string();
        assert!(msg.contains("8- and 16-entry"), "{msg}");
    }

    #[test]
    fn keys_are_content_addressed() {
        let a = LutSpec::new(Method::GqaRm, NonLinearOp::Gelu, 8, 1)
            .key()
            .unwrap();
        let b = LutSpec::new(Method::GqaRm, NonLinearOp::Gelu, 8, 1)
            .key()
            .unwrap();
        assert_eq!(a, b);
        for other in [
            LutSpec::new(Method::GqaNoRm, NonLinearOp::Gelu, 8, 1),
            LutSpec::new(Method::GqaRm, NonLinearOp::Exp, 8, 1),
            LutSpec::new(Method::GqaRm, NonLinearOp::Gelu, 16, 1),
            LutSpec::new(Method::GqaRm, NonLinearOp::Gelu, 8, 2),
            LutSpec::new(Method::GqaRm, NonLinearOp::Gelu, 8, 1).with_budget(0.5),
        ] {
            assert_ne!(a, other.key().unwrap(), "{other:?} must differ");
        }
    }

    #[test]
    fn clamped_budgets_dedupe_to_one_key() {
        // 0.01 and 0.015 both clamp to the 40-generation floor (and the
        // NN-LUT step/sample floors), deriving identical configs and thus
        // bit-identical artifacts — one cache entry, not two.
        for method in [Method::GqaRm, Method::NnLut] {
            let a = LutSpec::new(method, NonLinearOp::Gelu, 8, 1)
                .with_budget(0.01)
                .key()
                .unwrap();
            let b = LutSpec::new(method, NonLinearOp::Gelu, 8, 1)
                .with_budget(0.015)
                .key()
                .unwrap();
            assert_eq!(a, b, "{method:?}: clamped budgets must share a key");
        }
    }

    #[test]
    fn nnlut_keys_use_training_fingerprint() {
        let a = LutSpec::new(Method::NnLut, NonLinearOp::Div, 8, 1)
            .key()
            .unwrap();
        // DIV overrides the training range; the key must reflect it.
        assert_eq!(f64::from_bits(a.range_bits.0), 0.5);
        assert_eq!(f64::from_bits(a.range_bits.1), 8.0);
    }
}
