//! The three LUT-construction methods compared throughout the paper's
//! evaluation. Canonical home (moved here from `gqa-models` so the
//! artifact registry can address artifacts without depending on the model
//! layer).

use std::fmt;

/// The three methods compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// NN-LUT baseline (ref. \[11\]), INT8-converted per §4.1.
    NnLut,
    /// GQA-LUT with conventional Gaussian mutation ("w/o RM"): §3.2's
    /// straightforward approach — quantization-blind breakpoints, post-hoc
    /// FXP conversion.
    GqaNoRm,
    /// GQA-LUT with Rounding Mutation ("w/ RM"): FXP-aligned proposals and,
    /// for scale-dependent operators, the §4.1 dequantized-grid fitness, so
    /// selection rewards quantization-robust breakpoints.
    GqaRm,
}

impl Method {
    /// All three methods in the paper's column order.
    pub const ALL: [Method; 3] = [Method::NnLut, Method::GqaNoRm, Method::GqaRm];

    /// Paper-style label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Method::NnLut => "NN-LUT",
            Method::GqaNoRm => "GQA-LUT w/o RM",
            Method::GqaRm => "GQA-LUT w/ RM",
        }
    }

    /// Stable identifier used by snapshot files (no spaces or slashes).
    #[must_use]
    pub fn ident(self) -> &'static str {
        match self {
            Method::NnLut => "nnlut",
            Method::GqaNoRm => "gqa_no_rm",
            Method::GqaRm => "gqa_rm",
        }
    }

    /// Inverse of [`Method::ident`].
    #[must_use]
    pub fn from_ident(s: &str) -> Option<Self> {
        Method::ALL.into_iter().find(|m| m.ident() == s)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_round_trip() {
        for m in Method::ALL {
            assert_eq!(Method::from_ident(m.ident()), Some(m));
        }
        assert_eq!(Method::from_ident("bogus"), None);
    }
}
