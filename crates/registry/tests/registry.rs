//! Registry semantics: same-key hits, LRU capacity eviction, single-flight
//! build deduplication, and snapshot round-tripping.

// Only the single-flight test (parallel builds) needs the atomics.
#[cfg(feature = "parallel")]
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use gqa_funcs::NonLinearOp;
use gqa_registry::{LutRegistry, LutSpec, Method};

fn quick_spec(op: NonLinearOp, seed: u64) -> LutSpec {
    LutSpec::new(Method::GqaNoRm, op, 8, seed).with_budget(0.05)
}

#[test]
fn same_key_is_a_hit_and_shares_the_artifact() {
    let reg = LutRegistry::new();
    let spec = quick_spec(NonLinearOp::Gelu, 1);
    let a = reg.get_or_build(&spec).unwrap();
    let b = reg.get_or_build(&spec).unwrap();
    assert!(Arc::ptr_eq(&a, &b), "hit must share the cached Arc");
    let stats = reg.stats();
    assert_eq!((stats.hits, stats.misses, stats.builds), (1, 1, 1));
    assert!(stats.build_ns > 0, "build time must be recorded");
    assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    assert_eq!(reg.len(), 1);
}

#[test]
fn different_seeds_are_different_artifacts() {
    let reg = LutRegistry::new();
    let a = reg.get_or_build(&quick_spec(NonLinearOp::Exp, 1)).unwrap();
    let b = reg.get_or_build(&quick_spec(NonLinearOp::Exp, 2)).unwrap();
    assert!(!Arc::ptr_eq(&a, &b));
    assert_eq!(reg.stats().builds, 2);
    assert_eq!(reg.len(), 2);
}

#[test]
fn capacity_bound_evicts_least_recently_used() {
    let reg = LutRegistry::with_capacity(2);
    let s1 = quick_spec(NonLinearOp::Gelu, 1);
    let s2 = quick_spec(NonLinearOp::Gelu, 2);
    let s3 = quick_spec(NonLinearOp::Gelu, 3);
    reg.get_or_build(&s1).unwrap();
    reg.get_or_build(&s2).unwrap();
    // Touch s1 so s2 becomes the LRU victim.
    reg.get_or_build(&s1).unwrap();
    reg.get_or_build(&s3).unwrap();
    assert_eq!(reg.len(), 2);
    assert_eq!(reg.stats().evictions, 1);
    // s1 and s3 survive as cache hits; s2 must rebuild.
    let builds_before = reg.stats().builds;
    reg.get_or_build(&s1).unwrap();
    reg.get_or_build(&s3).unwrap();
    assert_eq!(reg.stats().builds, builds_before, "s1/s3 must be hits");
    reg.get_or_build(&s2).unwrap();
    assert_eq!(reg.stats().builds, builds_before + 1, "s2 was evicted");
}

#[cfg(feature = "parallel")]
#[test]
fn single_flight_deduplicates_concurrent_builds() {
    let reg = Arc::new(LutRegistry::new());
    let spec = quick_spec(NonLinearOp::Hswish, 7);
    let key = spec.key().unwrap();
    let cold_builds = Arc::new(AtomicUsize::new(0));

    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let counter = Arc::clone(&cold_builds);
                s.spawn(move || {
                    reg.get_or_build_with(key, || {
                        counter.fetch_add(1, Ordering::SeqCst);
                        spec.compile().unwrap()
                    })
                    .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        cold_builds.load(Ordering::SeqCst),
        1,
        "exactly one thread must run the cold build"
    );
    for r in &results[1..] {
        assert!(
            Arc::ptr_eq(&results[0], r),
            "all threads must share one artifact"
        );
    }
    let stats = reg.stats();
    assert_eq!(stats.builds, 1);
    assert!(
        stats.dedup_waits >= 1 || stats.hits >= 1,
        "joiners must either wait on the in-flight build or hit the \
         finished entry: {stats}"
    );
}

#[test]
fn snapshot_round_trips_bit_exactly() {
    let reg = LutRegistry::new();
    reg.get_or_build(&quick_spec(NonLinearOp::Gelu, 11))
        .unwrap();
    reg.get_or_build(&quick_spec(NonLinearOp::Div, 13)).unwrap();
    reg.get_or_build(&LutSpec::new(Method::NnLut, NonLinearOp::Exp, 8, 5).with_budget(0.02))
        .unwrap();
    let json = reg.snapshot_json();

    let warm = LutRegistry::new();
    assert_eq!(warm.load_snapshot_json(&json), Ok(3));
    assert_eq!(warm.len(), 3);

    // Every artifact must now be served warm, bit-identical to the
    // original, with zero builds.
    for spec in [
        quick_spec(NonLinearOp::Gelu, 11),
        quick_spec(NonLinearOp::Div, 13),
        LutSpec::new(Method::NnLut, NonLinearOp::Exp, 8, 5).with_budget(0.02),
    ] {
        let orig = reg.get_or_build(&spec).unwrap();
        let loaded = warm.get_or_build(&spec).unwrap();
        assert_eq!(*orig, *loaded, "{spec:?} must round-trip bit-exactly");
    }
    assert_eq!(warm.stats().builds, 0, "warm registry never compiles");
    assert_eq!(warm.stats().hits, 3);

    // The snapshot of the warm registry is identical (deterministic
    // serialization).
    assert_eq!(json, warm.snapshot_json());
}

#[test]
fn snapshot_file_round_trips_through_typed_path_api() {
    use gqa_registry::SnapshotError;
    let dir = std::env::temp_dir().join(format!("gqa-registry-path-api-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snap.json"); // PathBuf, not &str: the typed API
    let reg = LutRegistry::new();
    reg.get_or_build(&quick_spec(NonLinearOp::Gelu, 31))
        .unwrap();
    reg.save_snapshot(&path).unwrap();

    let warm = LutRegistry::new();
    assert_eq!(warm.load_snapshot(&path), Ok(1));
    let orig = reg
        .get_or_build(&quick_spec(NonLinearOp::Gelu, 31))
        .unwrap();
    let loaded = warm
        .get_or_build(&quick_spec(NonLinearOp::Gelu, 31))
        .unwrap();
    assert_eq!(*orig, *loaded);
    assert_eq!(warm.stats().builds, 0);

    // Both directions surface I/O failures as the typed variant, not a
    // bare io::Result.
    assert!(matches!(
        warm.load_snapshot(dir.join("missing.json")),
        Err(SnapshotError::Io(_))
    ));
    assert!(matches!(
        reg.save_snapshot(dir.join("no-such-dir").join("snap.json")),
        Err(SnapshotError::Io(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_content_hash_tracks_entries() {
    use gqa_registry::{fnv1a_64, snapshot_content_hash};
    let reg = LutRegistry::new();
    reg.get_or_build(&quick_spec(NonLinearOp::Gelu, 45))
        .unwrap();
    let json = reg.snapshot_json();
    let hash = snapshot_content_hash(&json).expect("header carries a content hash");
    // The hash covers the serialized entries section verbatim.
    let entries_at = json.find("  \"entries\"").expect("entries section");
    assert_eq!(hash, fnv1a_64(&json.as_bytes()[entries_at..]));
    // Reading only a file-sized prefix of the header is enough.
    assert_eq!(snapshot_content_hash(&json[..120]), Some(hash));
    // Same artifacts → same hash; different artifacts → different hash.
    reg.get_or_build(&quick_spec(NonLinearOp::Div, 45)).unwrap();
    let grown = snapshot_content_hash(&reg.snapshot_json()).unwrap();
    assert_ne!(hash, grown, "hash must change when the entry set changes");
    // Pre-hash snapshots (no header field) read as None, and the loader
    // still accepts hash-bearing snapshots.
    assert_eq!(
        snapshot_content_hash("{\"version\": 1, \"entries\": []}"),
        None
    );
    let warm = LutRegistry::new();
    assert_eq!(warm.load_snapshot_json(&json), Ok(1));
}

#[test]
fn filtered_snapshot_keeps_only_matching_keys() {
    let reg = LutRegistry::new();
    reg.get_or_build(&quick_spec(NonLinearOp::Gelu, 41))
        .unwrap();
    reg.get_or_build(&quick_spec(NonLinearOp::Div, 41)).unwrap();

    let gelu_only = reg.snapshot_json_where(|k| k.op == NonLinearOp::Gelu);
    let warm = LutRegistry::new();
    assert_eq!(warm.load_snapshot_json(&gelu_only), Ok(1));
    let builds_before = warm.stats().builds;
    warm.get_or_build(&quick_spec(NonLinearOp::Gelu, 41))
        .unwrap();
    assert_eq!(warm.stats().builds, builds_before, "gelu must be warm");
    warm.get_or_build(&quick_spec(NonLinearOp::Div, 41))
        .unwrap();
    assert_eq!(warm.stats().builds, builds_before + 1, "div was filtered");

    // A filter admitting everything is the plain snapshot.
    assert_eq!(reg.snapshot_json_where(|_| true), reg.snapshot_json());
}

#[test]
fn snapshot_rejects_garbage() {
    let reg = LutRegistry::new();
    assert!(reg.load_snapshot_json("not json").is_err());
    assert!(reg
        .load_snapshot_json("{\"version\": 99, \"entries\": []}")
        .is_err());
    assert!(reg.load_snapshot_json("{\"version\": 1}").is_err());
    // A snapshot without a pipeline marker is malformed.
    assert!(reg
        .load_snapshot_json("{\"version\": 1, \"entries\": []}")
        .is_err());
    let empty = format!(
        "{{\"version\": 1, \"pipeline\": {}, \"entries\": []}}",
        gqa_registry::PIPELINE_VERSION
    );
    assert_eq!(reg.load_snapshot_json(&empty), Ok(0));
}

#[test]
fn snapshot_from_another_pipeline_revision_is_refused() {
    use gqa_registry::SnapshotError;
    let reg = LutRegistry::new();
    let stale = format!(
        "{{\"version\": 1, \"pipeline\": {}, \"entries\": []}}",
        gqa_registry::PIPELINE_VERSION + 1
    );
    assert_eq!(
        reg.load_snapshot_json(&stale),
        Err(SnapshotError::StalePipeline(
            gqa_registry::PIPELINE_VERSION + 1
        ))
    );
    assert!(reg.is_empty(), "stale snapshot must load nothing");
}

#[test]
fn clear_preserves_stats() {
    let reg = LutRegistry::new();
    reg.get_or_build(&quick_spec(NonLinearOp::Gelu, 21))
        .unwrap();
    assert_eq!(reg.len(), 1);
    reg.clear();
    assert!(reg.is_empty());
    assert_eq!(reg.stats().builds, 1);
}
