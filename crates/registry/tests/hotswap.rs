//! `HotSwapBackend` swap-under-eval semantics, pinned directly (they were
//! previously only exercised indirectly through the registry bench):
//!
//! 1. a swap that lands while another thread is mid-`eval_many*` must not
//!    tear a tensor — every buffer comes out uniformly from ONE delegate;
//! 2. in-flight calls finish on the delegate they resolved, subsequent
//!    calls use the new one;
//! 3. `swap` returns the previous delegate so callers can restore it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gqa_registry::HotSwapBackend;
use gqa_tensor::{UnaryBackend, UnaryKind};

/// A backend returning a constant, slow enough per element that a swap has
/// a wide window to land mid-buffer.
struct ConstBackend(f64);

impl UnaryBackend for ConstBackend {
    fn eval(&self, _kind: UnaryKind, _x: f64) -> f64 {
        // A few spins per element widen the race window without making
        // the test slow.
        std::hint::black_box((0..8).fold(self.0, |v, _| std::hint::black_box(v)))
    }
}

#[test]
fn tensor_evals_never_mix_delegates_across_a_swap() {
    let hs = Arc::new(HotSwapBackend::new(Arc::new(ConstBackend(1.0))));
    let stop = AtomicBool::new(false);
    // Longer than one staging chunk (256), so a per-chunk lock would give
    // a swap landing between chunks a mixed buffer.
    let xs64 = vec![0.5f64; 1000];
    let xs32 = vec![0.5f32; 1000];

    std::thread::scope(|s| {
        let evaluator = s.spawn(|| {
            let mut out64 = vec![0.0f64; xs64.len()];
            let mut out32 = vec![0.0f32; xs32.len()];
            let mut saw = [false; 2]; // which delegates were observed
            while !stop.load(Ordering::Relaxed) {
                hs.eval_many(UnaryKind::Gelu, &xs64, &mut out64);
                let first = out64[0];
                assert!(
                    out64.iter().all(|&y| y == first),
                    "eval_many mixed two delegates in one tensor"
                );
                hs.eval_many_f32(UnaryKind::Gelu, &xs32, &mut out32);
                let first32 = out32[0];
                assert!(
                    out32.iter().all(|&y| y == first32),
                    "eval_many_f32 mixed two delegates in one tensor"
                );
                saw[(first - 1.0) as usize] = true;
            }
            saw
        });

        for i in 0..200 {
            let v = if i % 2 == 0 { 2.0 } else { 1.0 };
            hs.swap(Arc::new(ConstBackend(v)));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let saw = evaluator.join().expect("evaluator panicked");
        // Not a strict requirement (scheduling-dependent), but on any
        // normal run the evaluator observes at least one delegate.
        assert!(saw[0] || saw[1]);
    });
}

#[test]
fn swap_returns_previous_and_subsequent_calls_use_next() {
    let hs = HotSwapBackend::new(Arc::new(ConstBackend(7.0)));
    assert_eq!(hs.eval(UnaryKind::Relu, -3.0), 7.0);

    let prev = hs.swap(Arc::new(ConstBackend(9.0)));
    assert_eq!(hs.eval(UnaryKind::Relu, -3.0), 9.0);
    // The returned delegate is the one that was serving before.
    assert_eq!(prev.eval(UnaryKind::Relu, -3.0), 7.0);

    // Restoring it brings the old datapath back.
    hs.swap(prev);
    assert_eq!(hs.eval(UnaryKind::Relu, -3.0), 7.0);

    let mut out = [0.0f32; 3];
    hs.eval_many_f32(UnaryKind::Gelu, &[1.0, 2.0, 3.0], &mut out);
    assert_eq!(out, [7.0f32; 3]);
}

#[test]
fn graph_sees_the_swap_between_forward_passes() {
    use gqa_tensor::{ExactBackend, Graph, Tensor};

    let hs = HotSwapBackend::new(Arc::new(ExactBackend));
    let forward = |hs: &HotSwapBackend| {
        let mut g = Graph::new(hs);
        let x = g.input(Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]));
        let y = g.unary(x, UnaryKind::Relu);
        g.value(y).data.clone()
    };
    assert_eq!(forward(&hs), vec![0.0, 0.0, 2.0]);
    hs.swap(Arc::new(ConstBackend(5.0)));
    assert_eq!(forward(&hs), vec![5.0, 5.0, 5.0]);
}

// ---------------------------------------------------------------------------
// Swap-under-fused-eval semantics.
// ---------------------------------------------------------------------------

use std::sync::Mutex;

use gqa_tensor::{eval_many_f32_via_f64, ExactBackend, Graph, Tensor};

/// An exact-math delegate that fires one deferred [`HotSwapBackend::swap`]
/// from *inside* its own EXP evaluation — deterministically simulating an
/// operator swap landing while a softmax (fused or unfused) is mid-node,
/// after the EXP stage resolved its datapath but before the DIV stage
/// runs. Relies on `HotSwapBackend` releasing its lock before the
/// delegate runs.
type ArmedSwap = (Arc<HotSwapBackend>, Arc<dyn UnaryBackend>);

struct SwapDuringExp {
    cell: Mutex<Option<ArmedSwap>>,
}

impl SwapDuringExp {
    fn arm(cell: Arc<HotSwapBackend>, next: Arc<dyn UnaryBackend>) -> Self {
        Self {
            cell: Mutex::new(Some((cell, next))),
        }
    }
}

impl UnaryBackend for SwapDuringExp {
    fn eval(&self, kind: UnaryKind, x: f64) -> f64 {
        kind.exact(x)
    }

    fn eval_many_f32(&self, kind: UnaryKind, xs: &[f32], out: &mut [f32]) {
        eval_many_f32_via_f64(self, kind, xs, out);
        if kind == UnaryKind::Exp {
            if let Some((cell, next)) = self.cell.lock().expect("armed once").take() {
                cell.swap(next);
            }
        }
    }
}

/// A delegate whose reciprocal is deliberately wrong (off by ×2), so a
/// swap landing between a softmax's EXP and DIV stages is visible in the
/// output.
struct DoubledRecip;

impl UnaryBackend for DoubledRecip {
    fn eval(&self, kind: UnaryKind, x: f64) -> f64 {
        match kind {
            UnaryKind::Recip => 2.0 / x,
            other => other.exact(x),
        }
    }
}

/// A swap occurring between rows/stages of a fused softmax node must (a)
/// actually take effect for the later stage — never torn within a stage —
/// and (b) leave the fused output bit-identical to the unfused assembly
/// under the *same* scripted swap, because both spellings make the same
/// sequence of tensor-level backend calls.
#[test]
fn fused_softmax_swap_mid_node_matches_unfused() {
    let xs: Vec<f32> = (0..24).map(|i| (i as f32 * 0.61).sin() * 3.0).collect();
    let run = |fused: bool| {
        let hs = Arc::new(HotSwapBackend::new(Arc::new(ExactBackend)));
        hs.swap(Arc::new(SwapDuringExp::arm(
            Arc::clone(&hs),
            Arc::new(DoubledRecip),
        )));
        let mut g = Graph::new(hs.as_ref());
        let x = g.input(Tensor::from_vec(xs.clone(), &[4, 6]));
        let s = if fused {
            g.softmax(x)
        } else {
            g.softmax_rows(x)
        };
        g.value(s).data.clone()
    };
    let fused = run(true);
    let unfused = run(false);
    for (a, b) in fused.iter().zip(&unfused) {
        assert_eq!(a.to_bits(), b.to_bits(), "fused vs unfused under swap");
    }
    // The swap demonstrably landed mid-node: every row now sums to 2
    // (the doubled reciprocal served the DIV stage).
    for row in fused.chunks(6) {
        let sum: f32 = row.iter().sum();
        assert!((sum - 2.0).abs() < 1e-4, "row sum {sum}");
    }
}

/// Same contract one level up: a swap landing inside a **fused attention
/// node** — between its softmax's EXP and DIV stages — must take effect
/// for the DIV stage and leave the fused output bit-identical to the
/// unfused five-node assembly under the same scripted swap (both
/// spellings make exactly one whole-tensor EXP call and one DIV call).
#[test]
fn fused_attention_swap_mid_node_matches_unfused() {
    let qs: Vec<f32> = (0..24).map(|i| (i as f32 * 0.43).sin() * 2.0).collect();
    let ks: Vec<f32> = (0..32).map(|i| (i as f32 * 0.29).cos() * 2.0).collect();
    let vs: Vec<f32> = (0..32).map(|i| (i as f32 * 0.17).sin() + 0.5).collect();
    let run = |fused: bool| {
        let hs = Arc::new(HotSwapBackend::new(Arc::new(ExactBackend)));
        hs.swap(Arc::new(SwapDuringExp::arm(
            Arc::clone(&hs),
            Arc::new(DoubledRecip),
        )));
        let mut g = Graph::new(hs.as_ref());
        let q = g.input(Tensor::from_vec(qs.clone(), &[2, 3, 4]));
        let k = g.input(Tensor::from_vec(ks.clone(), &[2, 4, 4]));
        let v = g.input(Tensor::from_vec(vs.clone(), &[2, 4, 4]));
        let y = if fused {
            g.attention(q, k, v, 0.5)
        } else {
            let kt = g.transpose_last2(k);
            let scores = g.batch_matmul(q, kt);
            let scaled = g.scale(scores, 0.5);
            let attn = g.softmax(scaled);
            g.batch_matmul(attn, v)
        };
        g.value(y).data.clone()
    };
    let fused = run(true);
    let unfused = run(false);
    for (a, b) in fused.iter().zip(&unfused) {
        assert_eq!(a.to_bits(), b.to_bits(), "fused vs unfused under swap");
    }
    // The swap demonstrably landed mid-node: the doubled reciprocal
    // doubled every attention row's mass, so the context vectors are 2×
    // what an exact pass yields.
    let hs_exact = HotSwapBackend::new(Arc::new(ExactBackend));
    let mut g = Graph::new(&hs_exact);
    let q = g.input(Tensor::from_vec(qs, &[2, 3, 4]));
    let k = g.input(Tensor::from_vec(ks, &[2, 4, 4]));
    let v = g.input(Tensor::from_vec(vs, &[2, 4, 4]));
    let y = g.attention(q, k, v, 0.5);
    for (swapped, exact) in fused.iter().zip(&g.value(y).data) {
        assert!(
            (swapped - 2.0 * exact).abs() < 1e-4,
            "{swapped} vs 2×{exact}"
        );
    }
}

/// Same contract for the fused LayerNorm: its single RSQRT stage resolves
/// one delegate; a swap after the node's evaluation affects only later
/// nodes, identically in both spellings.
#[test]
fn fused_layernorm_swap_between_nodes_matches_unfused() {
    struct HalvedRsqrt;
    impl UnaryBackend for HalvedRsqrt {
        fn eval(&self, kind: UnaryKind, x: f64) -> f64 {
            match kind {
                UnaryKind::Rsqrt => 0.5 / x.sqrt(),
                other => other.exact(x),
            }
        }
    }
    let xs: Vec<f32> = (0..30).map(|i| (i as f32 * 0.37).cos() * 2.0).collect();
    let run = |fused: bool| {
        let hs = HotSwapBackend::new(Arc::new(ExactBackend));
        let mut g = Graph::new(&hs);
        let x = g.input(Tensor::from_vec(xs.clone(), &[5, 6]));
        let first = if fused {
            g.layer_norm(x, 1e-5)
        } else {
            g.layernorm_rows(x, 1e-5)
        };
        hs.swap(Arc::new(HalvedRsqrt));
        let second = if fused {
            g.layer_norm(x, 1e-5)
        } else {
            g.layernorm_rows(x, 1e-5)
        };
        (g.value(first).data.clone(), g.value(second).data.clone())
    };
    let (f1, f2) = run(true);
    let (u1, u2) = run(false);
    for (a, b) in f1.iter().zip(&u1) {
        assert_eq!(a.to_bits(), b.to_bits(), "pre-swap");
    }
    for (a, b) in f2.iter().zip(&u2) {
        assert_eq!(a.to_bits(), b.to_bits(), "post-swap");
    }
    // And the swap visibly halved the normalized scale.
    for (a, b) in f1.iter().zip(&f2) {
        assert!((a * 0.5 - b).abs() < 1e-5, "{a} vs {b}");
    }
}
