//! `HotSwapBackend` swap-under-eval semantics, pinned directly (they were
//! previously only exercised indirectly through the registry bench):
//!
//! 1. a swap that lands while another thread is mid-`eval_many*` must not
//!    tear a tensor — every buffer comes out uniformly from ONE delegate;
//! 2. in-flight calls finish on the delegate they resolved, subsequent
//!    calls use the new one;
//! 3. `swap` returns the previous delegate so callers can restore it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gqa_registry::HotSwapBackend;
use gqa_tensor::{UnaryBackend, UnaryKind};

/// A backend returning a constant, slow enough per element that a swap has
/// a wide window to land mid-buffer.
struct ConstBackend(f64);

impl UnaryBackend for ConstBackend {
    fn eval(&self, _kind: UnaryKind, _x: f64) -> f64 {
        // A few spins per element widen the race window without making
        // the test slow.
        std::hint::black_box((0..8).fold(self.0, |v, _| std::hint::black_box(v)))
    }
}

#[test]
fn tensor_evals_never_mix_delegates_across_a_swap() {
    let hs = Arc::new(HotSwapBackend::new(Arc::new(ConstBackend(1.0))));
    let stop = AtomicBool::new(false);
    // Longer than one staging chunk (256), so a per-chunk lock would give
    // a swap landing between chunks a mixed buffer.
    let xs64 = vec![0.5f64; 1000];
    let xs32 = vec![0.5f32; 1000];

    std::thread::scope(|s| {
        let evaluator = s.spawn(|| {
            let mut out64 = vec![0.0f64; xs64.len()];
            let mut out32 = vec![0.0f32; xs32.len()];
            let mut saw = [false; 2]; // which delegates were observed
            while !stop.load(Ordering::Relaxed) {
                hs.eval_many(UnaryKind::Gelu, &xs64, &mut out64);
                let first = out64[0];
                assert!(
                    out64.iter().all(|&y| y == first),
                    "eval_many mixed two delegates in one tensor"
                );
                hs.eval_many_f32(UnaryKind::Gelu, &xs32, &mut out32);
                let first32 = out32[0];
                assert!(
                    out32.iter().all(|&y| y == first32),
                    "eval_many_f32 mixed two delegates in one tensor"
                );
                saw[(first - 1.0) as usize] = true;
            }
            saw
        });

        for i in 0..200 {
            let v = if i % 2 == 0 { 2.0 } else { 1.0 };
            hs.swap(Arc::new(ConstBackend(v)));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let saw = evaluator.join().expect("evaluator panicked");
        // Not a strict requirement (scheduling-dependent), but on any
        // normal run the evaluator observes at least one delegate.
        assert!(saw[0] || saw[1]);
    });
}

#[test]
fn swap_returns_previous_and_subsequent_calls_use_next() {
    let hs = HotSwapBackend::new(Arc::new(ConstBackend(7.0)));
    assert_eq!(hs.eval(UnaryKind::Relu, -3.0), 7.0);

    let prev = hs.swap(Arc::new(ConstBackend(9.0)));
    assert_eq!(hs.eval(UnaryKind::Relu, -3.0), 9.0);
    // The returned delegate is the one that was serving before.
    assert_eq!(prev.eval(UnaryKind::Relu, -3.0), 7.0);

    // Restoring it brings the old datapath back.
    hs.swap(prev);
    assert_eq!(hs.eval(UnaryKind::Relu, -3.0), 7.0);

    let mut out = [0.0f32; 3];
    hs.eval_many_f32(UnaryKind::Gelu, &[1.0, 2.0, 3.0], &mut out);
    assert_eq!(out, [7.0f32; 3]);
}

#[test]
fn graph_sees_the_swap_between_forward_passes() {
    use gqa_tensor::{ExactBackend, Graph, Tensor};

    let hs = HotSwapBackend::new(Arc::new(ExactBackend));
    let forward = |hs: &HotSwapBackend| {
        let mut g = Graph::new(hs);
        let x = g.input(Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]));
        let y = g.unary(x, UnaryKind::Relu);
        g.value(y).data.clone()
    };
    assert_eq!(forward(&hs), vec![0.0, 0.0, 2.0]);
    hs.swap(Arc::new(ConstBackend(5.0)));
    assert_eq!(forward(&hs), vec![5.0, 5.0, 5.0]);
}
