//! Integration: the serving engine across crates — and the contract that
//! the deprecated shims (`build_lut*`, `PwlBackend::build`) are
//! bit-compatible with the engine path they were re-routed through.
//!
//! The shims only exist behind the default-off `legacy` feature now, so
//! this suite only compiles on the CI leg that turns it on
//! (`cargo test --features legacy`).

#![cfg(feature = "legacy")]
#![allow(deprecated)] // this suite exists to pin the deprecated shims

use gqa::funcs::NonLinearOp;
use gqa::models::{
    build_lut_budgeted, CalibrationRecorder, Method, PwlBackend, ReplaceSet, SegConfig,
    SegformerLite,
};
use gqa::serve::{EngineBuilder, OpPlan, OperatorPlan};
use gqa::tensor::{BufferPool, EvalMode, Graph, ParamStore, Tensor, UnaryBackend, UnaryKind};

#[test]
fn deprecated_build_lut_matches_engine_artifact_bitwise() {
    for (method, op, seed) in [
        (Method::GqaRm, NonLinearOp::Gelu, 3),
        (Method::GqaNoRm, NonLinearOp::Div, 4),
        (Method::NnLut, NonLinearOp::Exp, 5),
    ] {
        let shim = build_lut_budgeted(method, op, 8, seed, 0.05);
        let plan = OpPlan::new(method).with_seed(seed).with_budget(0.05);
        let engine = EngineBuilder::new(OperatorPlan::new().with(op, plan))
            .build()
            .unwrap();
        let served = engine.artifact(op).unwrap();
        assert_eq!(
            shim, *served,
            "{method:?}/{op}: shim and engine artifacts must be bit-identical"
        );
    }
}

#[test]
fn deprecated_pwl_backend_matches_session_bitwise() {
    // Calibrate on a real forward pass so the scale-dependent operators
    // get non-default scales (the interesting case for equivalence).
    let mut ps = ParamStore::new();
    let model = SegformerLite::new(&mut ps, SegConfig::tiny(), 11);
    let calib = CalibrationRecorder::new();
    let mut g = Graph::new_inference(&calib);
    let x = g.input(Tensor::full(&[1, 3, 16, 16], 0.4));
    let _ = model.forward(&mut g, &ps, x);

    let replace = ReplaceSet {
        gelu: true,
        exp: true,
        div: true,
        rsqrt: true,
        hswish: false,
    };
    let shim = PwlBackend::build(Method::GqaRm, replace, &calib, 11, 0.05);
    let plan = replace
        .to_plan(OpPlan::new(Method::GqaRm).with_seed(11).with_budget(0.05))
        .calibrated(&calib);
    let engine = EngineBuilder::new(plan).build().unwrap();
    let session = engine.session();

    // Every kind — replaced and not — must produce identical bits on both
    // paths, on the f64 and the f32 tensor entry points.
    let xs64: Vec<f64> = (1..400).map(|i| f64::from(i) * 0.01).collect();
    let xs32: Vec<f32> = xs64.iter().map(|&x| x as f32).collect();
    for kind in [
        UnaryKind::Gelu,
        UnaryKind::Exp,
        UnaryKind::Recip,
        UnaryKind::Rsqrt,
        UnaryKind::Hswish,
        UnaryKind::Relu,
        UnaryKind::Sigmoid,
    ] {
        let (mut a64, mut b64) = (vec![0.0f64; xs64.len()], vec![0.0f64; xs64.len()]);
        shim.eval_many(kind, &xs64, &mut a64);
        session.eval_many(kind, &xs64, &mut b64);
        assert_eq!(a64, b64, "{kind:?}: f64 path must be bit-identical");

        let (mut a32, mut b32) = (vec![0.0f32; xs32.len()], vec![0.0f32; xs32.len()]);
        shim.eval_many_f32(kind, &xs32, &mut a32);
        session.eval_many_f32(kind, &xs32, &mut b32);
        assert_eq!(a32, b32, "{kind:?}: f32 path must be bit-identical");

        assert_eq!(
            shim.eval(kind, 0.731).to_bits(),
            session.eval(kind, 0.731).to_bits(),
            "{kind:?}: scalar path must be bit-identical"
        );
    }
}

#[test]
fn model_forward_is_bit_identical_on_shim_and_session() {
    let mut ps = ParamStore::new();
    let model = SegformerLite::new(&mut ps, SegConfig::tiny(), 12);
    let image = Tensor::full(&[1, 3, 16, 16], 0.3);
    // Calibration only reads forward activations — an inference tape is
    // the right tool (no gradient bookkeeping).
    let calib = CalibrationRecorder::new();
    let mut gc = Graph::new_inference(&calib);
    let xc = gc.input(image.clone());
    let _ = model.forward(&mut gc, &ps, xc);

    let shim = PwlBackend::build(Method::GqaRm, ReplaceSet::all(), &calib, 12, 0.05);
    let plan = ReplaceSet::all()
        .to_plan(OpPlan::new(Method::GqaRm).with_seed(12).with_budget(0.05))
        .calibrated(&calib);
    let session = EngineBuilder::new(plan).build().unwrap().session();

    // The serving hot path: inference tapes over a recycled buffer pool,
    // compared in raw bits. The pool is threaded through both forwards,
    // so stale-buffer reuse is part of what the equality proves.
    let mut pool = BufferPool::new();
    let mut forward = |backend: &dyn UnaryBackend| {
        let mut g = Graph::with_mode(backend, EvalMode::Inference, std::mem::take(&mut pool));
        let x = g.input(image.clone());
        let n = model.forward(&mut g, &ps, x);
        let bits: Vec<u32> = g.value(n).data.iter().map(|v| v.to_bits()).collect();
        pool = g.recycle();
        bits
    };
    assert_eq!(
        forward(&shim),
        forward(&session),
        "whole-model logits must be bit-identical on both serving paths"
    );
}
