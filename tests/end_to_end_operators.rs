//! Integration: the full GA → LUT → quantized-datapath pipeline per
//! operator, across crates.

use gqa::funcs::NonLinearOp;
use gqa::fxp::{IntRange, PowerOfTwoScale};
use gqa::genetic::{GeneticSearch, SearchConfig};
use gqa::pwl::{eval, FxpPwl, MultiRangeLut, MultiRangeScaling};

fn quick(op: NonLinearOp) -> SearchConfig {
    SearchConfig::for_op(op)
        .with_generations(80)
        .with_population(30)
        .with_seed(2024)
}

#[test]
fn scale_dependent_ops_reach_paper_band() {
    // With a reduced budget the average dequantized MSE should still land
    // within ~10x of the paper's full-budget numbers.
    let bands = [
        (NonLinearOp::Gelu, 1.5e-3),
        (NonLinearOp::Hswish, 3.0e-3),
        (NonLinearOp::Exp, 1.5e-3),
    ];
    for (op, bound) in bands {
        let result = GeneticSearch::new(quick(op)).run();
        let range = IntRange::signed(8);
        let clip = Some(op.default_range());
        let sweep = eval::paper_scale_sweep();
        let avg: f64 = sweep
            .iter()
            .map(|&s| {
                let inst = result.lut().instantiate(s, range);
                eval::mse_dequantized(
                    &|q| inst.eval_dequantized(q),
                    &|x| op.eval(x),
                    s,
                    range,
                    clip,
                )
            })
            .sum::<f64>()
            / sweep.len() as f64;
        assert!(avg < bound, "{op}: avg quantized MSE {avg} above {bound}");
    }
}

#[test]
fn wide_range_ops_work_through_multirange_datapath() {
    for (op, scaling) in [
        (NonLinearOp::Div, MultiRangeScaling::div_paper()),
        (NonLinearOp::Rsqrt, MultiRangeScaling::rsqrt_paper()),
    ] {
        let result = GeneticSearch::new(quick(op)).run();
        let unit = MultiRangeLut::new(FxpPwl::new(result.lut(), 8), scaling);
        let mse = eval::mse_grid_fn(
            &|x| unit.eval_f64(x),
            &|x| op.eval(x),
            op.default_range(),
            0.01,
        );
        assert!(mse < 5e-3, "{op}: multi-range MSE {mse}");
        // And the wide range stays usable (bounded relative error well past
        // the breakpoint interval).
        for &x in &[5.0, 10.0, 30.0] {
            let rel = (unit.eval_f64(x) - op.eval(x)).abs() / op.eval(x);
            assert!(rel < 0.3, "{op}({x}): relative error {rel}");
        }
    }
}

#[test]
fn separated_evaluation_is_scale_consistent() {
    // pwl(S·q) computed via the INT8 datapath must agree with the FP pwl on
    // representable points up to the documented FXP/λ rounding.
    let result = GeneticSearch::new(quick(NonLinearOp::Gelu)).run();
    for e in [-5, -4, -3] {
        let s = PowerOfTwoScale::new(e);
        let inst = result.lut().instantiate(s, IntRange::signed(8));
        for q in [-100i64, -17, 0, 42, 127] {
            let x = q as f64 * s.to_f64();
            let fp = result.pwl().eval(x);
            let int = inst.eval_dequantized(q);
            // Entry selection may differ at quantized breakpoints; the value
            // gap is bounded by the local segment mismatch.
            assert!(
                (fp - int).abs() < 0.1,
                "S=2^{e} q={q}: fp {fp} vs int {int}"
            );
        }
    }
}

#[test]
fn sixteen_entries_dominate_eight_on_plain_grid() {
    // Compare pre-FXP fitness: `best_mse()` scores the λ-rounded artifact,
    // and at λ = 5 both configurations sit on the same ~1e-4 rounding noise
    // floor, so the post-FXP ratio is pure noise. The capacity claim the
    // paper makes (more entries → lower approximation error) is about the
    // breakpoint sets themselves.
    use gqa::genetic::FitnessEvaluator;
    use gqa::pwl::SegmentFit;
    use std::sync::Arc;

    let op = NonLinearOp::Exp;
    let r8 = GeneticSearch::new(quick(op)).run();
    let r16 = GeneticSearch::new(quick(op).with_entries_16()).run();
    let ev = FitnessEvaluator::new(
        Arc::new(move |x| op.eval(x)),
        op.default_range(),
        0.01,
        SegmentFit::LeastSquares,
    );
    let (_, m8) = ev.fitness(r8.breakpoints());
    let (_, m16) = ev.fitness(r16.breakpoints());
    assert!(
        m16 <= m8 * 1.5,
        "16-entry {m16} should not lose to 8-entry {m8}"
    );

    // Keep a (loose) guard on the post-FXP artifact too: both sit on the
    // λ = 5 rounding floor (~1e-4), so only a catastrophic regression in
    // the rounding path (QuantAwareLut / Fxp) should trip this.
    assert!(
        r16.best_mse() <= r8.best_mse() * 4.0,
        "post-FXP 16-entry {} degraded far beyond the rounding noise floor of 8-entry {}",
        r16.best_mse(),
        r8.best_mse()
    );
}
