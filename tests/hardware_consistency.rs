//! Integration: the hardware cost model reproduces Table 6's shape and
//! stays consistent with the LUT storage accounting of the pwl crate.

use gqa::hardware::{verilog, Precision, PwlUnit, TechnologyModel};
use gqa::pwl::{LutFormat, LutStorage};

#[test]
fn table6_anchor_and_ratios() {
    let tech = TechnologyModel::tsmc28_500mhz();
    let int8 = PwlUnit::new(Precision::Int8, 8);
    // Calibrated anchor.
    assert!((int8.area_um2(&tech) - 961.0).abs() / 961.0 < 0.03);
    assert!((int8.power_mw(&tech) - 0.40).abs() / 0.40 < 0.05);

    // Paper's headline reductions (81.3-81.7 % area, 79.3-80.2 % power):
    // the structural model must land within a few points of them.
    let int32 = PwlUnit::new(Precision::Int32, 8);
    let fp32 = PwlUnit::new(Precision::Fp32, 8);
    let area_saving_int32 = 1.0 - int8.area_um2(&tech) / int32.area_um2(&tech);
    let area_saving_fp32 = 1.0 - int8.area_um2(&tech) / fp32.area_um2(&tech);
    assert!(
        (0.74..0.88).contains(&area_saving_int32),
        "{area_saving_int32}"
    );
    assert!(
        (0.72..0.88).contains(&area_saving_fp32),
        "{area_saving_fp32}"
    );
    let power_saving_int32 = 1.0 - int8.power_mw(&tech) / int32.power_mw(&tech);
    let power_saving_fp32 = 1.0 - int8.power_mw(&tech) / fp32.power_mw(&tech);
    assert!(
        (0.72..0.88).contains(&power_saving_int32),
        "{power_saving_int32}"
    );
    assert!(
        (0.72..0.88).contains(&power_saving_fp32),
        "{power_saving_fp32}"
    );

    // 16-entry scaling (paper: 1.71x area, 1.95x power for INT8).
    let int8_16 = PwlUnit::new(Precision::Int8, 16);
    let r = int8_16.area_um2(&tech) / int8.area_um2(&tech);
    assert!((1.4..2.1).contains(&r), "area ratio {r}");
}

#[test]
fn monotone_in_precision_and_entries() {
    let tech = TechnologyModel::tsmc28_500mhz();
    for entries in [8usize, 16] {
        let mut prev = 0.0;
        for p in [Precision::Int8, Precision::Int16, Precision::Int32] {
            let a = PwlUnit::new(p, entries).area_um2(&tech);
            assert!(a > prev, "{p} {entries}-entry not monotone");
            prev = a;
        }
    }
    for p in Precision::ALL {
        let a8 = PwlUnit::new(p, 8).area_um2(&tech);
        let a16 = PwlUnit::new(p, 16).area_um2(&tech);
        assert!(a16 > a8, "{p}: 16-entry should exceed 8-entry");
    }
}

#[test]
fn storage_accounting_matches_formats() {
    // The quant-aware unit stores 8-bit words; the high-precision unit
    // 32-bit words — a 4x storage gap that the area gap must exceed
    // (datapath adds more).
    let qa = LutStorage::new(LutFormat::QuantAware { bits: 8, lambda: 5 }, 8);
    let hp = LutStorage::new(LutFormat::HighPrecision { bits: 32 }, 8);
    assert_eq!(hp.total_bits(), 4 * qa.total_bits());
    assert!(qa.needs_intercept_shifter());
    assert!(!hp.needs_intercept_shifter());
}

#[test]
fn verilog_emits_for_all_rows() {
    for p in Precision::ALL {
        for entries in [8usize, 16] {
            let v = verilog::emit_pwl_unit(p, entries);
            assert!(v.contains("module"), "{p} {entries}");
            assert!(v.contains(&format!("parameter N = {entries}")));
        }
    }
}
