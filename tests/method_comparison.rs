//! Integration: the paper's headline comparison — NN-LUT vs GQA-LUT w/o RM
//! vs GQA-LUT w/ RM — holds at reduced budget.

use gqa::funcs::NonLinearOp;
use gqa::fxp::IntRange;
use gqa::pwl::eval;
use gqa::pwl::QuantAwareLut;
use gqa::registry::{LutRegistry, Method};
use gqa::serve::OpPlan;

/// The comparison's one LUT spelling: a serve-layer plan entry resolved
/// through the process-global registry (shared across the tests in this
/// binary), at the suite's reduced budget.
fn build_lut(method: Method, op: NonLinearOp) -> QuantAwareLut {
    let spec = OpPlan::new(method)
        .with_entries(8)
        .with_seed(7)
        .with_budget(0.25)
        .spec(op);
    (*LutRegistry::global().get_or_build(&spec).unwrap()).clone()
}

fn avg_quantized_mse(method: Method, op: NonLinearOp) -> f64 {
    let lut = build_lut(method, op);
    let range = IntRange::signed(8);
    let clip = Some(op.default_range());
    let sweep = eval::paper_scale_sweep();
    sweep
        .iter()
        .map(|&s| {
            let inst = lut.instantiate(s, range);
            eval::mse_dequantized(
                &|q| inst.eval_dequantized(q),
                &|x| op.eval(x),
                s,
                range,
                clip,
            )
        })
        .sum::<f64>()
        / sweep.len() as f64
}

#[test]
fn gqa_with_rm_beats_nn_lut_on_gelu() {
    // Table 3's central column ordering (8-entry GELU):
    // NN-LUT > GQA w/ RM, by a substantial factor.
    let nn = avg_quantized_mse(Method::NnLut, NonLinearOp::Gelu);
    let rm = avg_quantized_mse(Method::GqaRm, NonLinearOp::Gelu);
    assert!(
        rm * 2.0 < nn,
        "w/ RM ({rm:.2e}) should beat NN-LUT ({nn:.2e}) by at least 2x"
    );
}

#[test]
fn rm_fixes_large_scales() {
    // Figure 2(a)'s story: at S = 2^0 the w/o RM variant suffers breakpoint
    // deviation; RM recovers most of it.
    let op = NonLinearOp::Gelu;
    let range = IntRange::signed(8);
    let clip = Some(op.default_range());
    let s = gqa::fxp::PowerOfTwoScale::new(0);
    let mse_at_s0 = |method: Method| {
        let lut = build_lut(method, op);
        let inst = lut.instantiate(s, range);
        eval::mse_dequantized(
            &|q| inst.eval_dequantized(q),
            &|x| op.eval(x),
            s,
            range,
            clip,
        )
    };
    let no_rm = mse_at_s0(Method::GqaNoRm);
    let rm = mse_at_s0(Method::GqaRm);
    assert!(
        rm < no_rm,
        "at S=2^0, w/ RM ({rm:.2e}) should beat w/o RM ({no_rm:.2e})"
    );
}

#[test]
fn nn_lut_wide_range_disadvantage() {
    // Table 3's DIV/RSQRT rows: NN-LUT (trained over the wide input range,
    // then INT8-converted) trails GQA-LUT by an order of magnitude.
    for op in [NonLinearOp::Div, NonLinearOp::Rsqrt] {
        let nn = {
            let lut = build_lut(Method::NnLut, op);
            let scaling = match op {
                NonLinearOp::Div => gqa::pwl::MultiRangeScaling::div_paper(),
                _ => gqa::pwl::MultiRangeScaling::rsqrt_paper(),
            };
            let unit =
                gqa::pwl::MultiRangeLut::new(gqa::pwl::FxpPwl::new(&lut, 8), scaling.clone());
            eval::mse_grid_fn(
                &|x| unit.eval_f64(x),
                &|x| op.eval(x),
                op.default_range(),
                0.01,
            )
        };
        let gqa_mse = {
            let lut = build_lut(Method::GqaNoRm, op);
            let scaling = match op {
                NonLinearOp::Div => gqa::pwl::MultiRangeScaling::div_paper(),
                _ => gqa::pwl::MultiRangeScaling::rsqrt_paper(),
            };
            let unit =
                gqa::pwl::MultiRangeLut::new(gqa::pwl::FxpPwl::new(&lut, 8), scaling.clone());
            eval::mse_grid_fn(
                &|x| unit.eval_f64(x),
                &|x| op.eval(x),
                op.default_range(),
                0.01,
            )
        };
        assert!(
            gqa_mse * 3.0 < nn,
            "{op}: GQA ({gqa_mse:.2e}) should beat NN-LUT ({nn:.2e}) by at least 3x"
        );
    }
}

#[test]
fn data_size_claim_holds() {
    // §4.1: GQA-LUT uses 0.35-0.8K points vs NN-LUT's 100K samples.
    use gqa::genetic::SearchConfig;
    use gqa::nnlut::NnLutConfig;
    for &op in NonLinearOp::PAPER_OPS.iter() {
        let gqa_points = SearchConfig::for_op(op).data_size();
        let nn_samples = NnLutConfig::for_op(op).samples;
        assert!(gqa_points <= 800, "{op}: {gqa_points}");
        assert!(gqa_points >= 350, "{op}: {gqa_points}");
        assert_eq!(nn_samples, 100_000);
        assert!(nn_samples / gqa_points >= 125);
    }
}
