//! Integration: model forward/backward with pwl backends across crates
//! (tensor ⊗ models ⊗ pwl ⊗ genetic), at test-sized budgets.

use std::sync::Arc;

use gqa::funcs::NonLinearOp;
use gqa::models::{
    CalibrationRecorder, EffVitConfig, EfficientVitLite, FinetuneHarness, HotSwapBackend, Method,
    PwlBackend, ReplaceSet, SegConfig, SegformerLite, TrainConfig,
};
use gqa::registry::LutRegistry;
use gqa::serve::{EngineBuilder, OpPlan};
use gqa::tensor::{
    BufferPool, EvalMode, ExactBackend, Graph, ParamStore, Tensor, UnaryBackend, UnaryKind,
};

/// One forward on the serving hot path — inference tape over a recycled
/// buffer pool — returning the output tensor. Training tests keep their
/// own `Graph::new` tapes; every pure forward in this suite goes through
/// here.
fn forward_pooled(
    backend: &dyn UnaryBackend,
    model: &SegformerLite,
    ps: &ParamStore,
    image: &Tensor,
    pool: &mut BufferPool,
) -> Tensor {
    let mut g = Graph::with_mode(backend, EvalMode::Inference, std::mem::take(pool));
    let x = g.input(image.clone());
    let n = model.forward(&mut g, ps, x);
    let out = g.value(n).clone();
    *pool = g.recycle();
    out
}

/// One registry shared by every engine in this binary, so repeated specs
/// run zero extra search generations (the role `LutRegistry::global()`
/// used to play for `PwlBackend::build`).
fn shared_registry() -> std::sync::Arc<LutRegistry> {
    static SHARED: std::sync::OnceLock<std::sync::Arc<LutRegistry>> = std::sync::OnceLock::new();
    std::sync::Arc::clone(SHARED.get_or_init(|| std::sync::Arc::new(LutRegistry::new())))
}

/// An engine session for `replace` at the given method/seed/budget.
fn engine_session(
    method: Method,
    replace: ReplaceSet,
    calib: &CalibrationRecorder,
    seed: u64,
    budget: f64,
) -> gqa::serve::Session {
    let plan = replace
        .to_plan(OpPlan::new(method).with_seed(seed).with_budget(budget))
        .calibrated(calib);
    EngineBuilder::new(plan)
        .with_registry(shared_registry())
        .build()
        .expect("engine build")
        .session()
}

#[test]
fn segformer_logits_with_pwl_backend_stay_close_to_exact() {
    let mut ps = ParamStore::new();
    let model = SegformerLite::new(&mut ps, SegConfig::tiny(), 5);
    let image = Tensor::full(&[1, 3, 16, 16], 0.4);

    // All three passes (reference, calibration, LUT-served) are pure
    // forwards: inference tapes sharing one recycled buffer pool.
    let mut pool = BufferPool::new();
    let exact = ExactBackend;
    let exact_logits = forward_pooled(&exact, &model, &ps, &image, &mut pool);

    // Calibrate, then route every paper operator through GQA-LUT w/ RM.
    let calib = CalibrationRecorder::new();
    let _ = forward_pooled(&calib, &model, &ps, &image, &mut pool);
    let backend = engine_session(Method::GqaRm, ReplaceSet::all(), &calib, 5, 0.1);

    let pwl_logits = forward_pooled(&backend, &model, &ps, &image, &mut pool);

    assert_eq!(exact_logits.shape, pwl_logits.shape);
    let mut worst = 0.0f32;
    for (a, b) in exact_logits.data.iter().zip(&pwl_logits.data) {
        worst = worst.max((a - b).abs());
    }
    let scale = exact_logits.max_abs().max(1e-3);
    assert!(
        worst / scale < 0.8,
        "pwl logits diverge: worst {worst} vs magnitude {scale}"
    );
}

#[test]
fn efficientvit_trains_with_hswish_div_luts() {
    let harness = FinetuneHarness::new(TrainConfig::tiny());
    let mut ps = ParamStore::new();
    let model = EfficientVitLite::new(&mut ps, EffVitConfig::tiny(), 6);
    let exact = ExactBackend;
    let _ = harness.train(&model, &mut ps, &exact, 2, 2e-3, false);
    let calib = harness.calibrate(&model, &ps);
    let replace = ReplaceSet {
        hswish: true,
        div: true,
        ..ReplaceSet::none()
    };
    let backend = engine_session(Method::GqaNoRm, replace, &calib, 6, 0.05);
    // Fine-tuning through the LUT backend must reduce (or at least not
    // explode) the loss.
    let loss = harness.train(&model, &mut ps, &backend, 2, 5e-4, true);
    assert!(loss.is_finite() && loss < 4.0, "loss {loss}");
    let out = harness.evaluate(&model, &ps, &backend);
    assert!((0.0..=1.0).contains(&out.miou));
}

#[test]
fn backend_substitution_changes_only_replaced_ops() {
    let lut = (*shared_registry()
        .get_or_build(
            &OpPlan::new(Method::GqaRm)
                .with_seed(9)
                .with_budget(0.05)
                .spec(NonLinearOp::Gelu),
        )
        .unwrap())
    .clone();
    let backend = PwlBackend::from_luts(
        Some((lut, gqa::fxp::PowerOfTwoScale::new(-5))),
        None,
        None,
        None,
        None,
    );
    // GELU approximated, everything else bit-exact with the reference.
    assert_ne!(
        backend.eval(UnaryKind::Gelu, 0.731),
        UnaryKind::Gelu.exact(0.731)
    );
    for kind in [
        UnaryKind::Exp,
        UnaryKind::Recip,
        UnaryKind::Rsqrt,
        UnaryKind::Relu,
    ] {
        assert_eq!(backend.eval(kind, 0.731), kind.exact(0.731), "{kind:?}");
    }
}

#[test]
fn hot_swap_moves_a_live_model_between_backends() {
    let mut ps = ParamStore::new();
    let model = SegformerLite::new(&mut ps, SegConfig::tiny(), 5);
    let image = Tensor::full(&[1, 3, 16, 16], 0.4);

    // Reference logits on the exact backend — pooled inference forward.
    let mut pool = BufferPool::new();
    let exact = ExactBackend;
    let exact_logits = forward_pooled(&exact, &model, &ps, &image, &mut pool);
    let bits = |t: &Tensor| t.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>();

    let calib = CalibrationRecorder::new();
    let _ = forward_pooled(&calib, &model, &ps, &image, &mut pool);
    // Same plan as segformer_logits_... and a shared registry, so this
    // engine build runs zero search generations; the session then swaps
    // into the raw hot-swap cell like any other backend.
    let pwl = engine_session(Method::GqaRm, ReplaceSet::all(), &calib, 5, 0.1);

    // One hot-swap cell, two datapaths: swap between pooled forwards
    // without reassembling the model — the pool survives the swap too.
    let hot = HotSwapBackend::default();
    let via_exact = forward_pooled(&hot, &model, &ps, &image, &mut pool);
    assert_eq!(
        bits(&via_exact),
        bits(&exact_logits),
        "exact route is exact"
    );

    hot.swap(Arc::new(pwl));
    let via_pwl = forward_pooled(&hot, &model, &ps, &image, &mut pool);
    assert_eq!(via_pwl.shape, exact_logits.shape);
    assert_ne!(
        bits(&via_pwl),
        bits(&exact_logits),
        "LUT datapath must actually be in use after the swap"
    );
}

#[test]
fn weight_quantization_preserves_accuracy_roughly() {
    // INT8 PoT weight fake-quant should not destroy a trained model.
    let harness = FinetuneHarness::new(TrainConfig::tiny());
    let mut ps = ParamStore::new();
    let model = SegformerLite::new(&mut ps, SegConfig::tiny(), 7);
    let exact = ExactBackend;
    let _ = harness.train(&model, &mut ps, &exact, 4, 2e-3, false);
    let fp = harness.evaluate(&model, &ps, &exact);
    gqa::models::quantize_weights_pot(&mut ps);
    let q = harness.evaluate(&model, &ps, &exact);
    assert!(
        q.pixel_accuracy > fp.pixel_accuracy - 0.25,
        "quantization collapse: {} -> {}",
        fp.pixel_accuracy,
        q.pixel_accuracy
    );
}
