//! The network layer end to end: a `NetServer` fronting the serving
//! stack over real loopback sockets, a blocking `NetClient` round trip
//! proven bit-identical to the in-process path, typed errors surviving
//! the wire, weighted fair admission, and the Prometheus export.
//!
//! Run with: `cargo run --release --example net_roundtrip`

use gqa::funcs::NonLinearOp;
use gqa::net::{FairConfig, NetClient, NetConfig, NetError, NetServer, RemoteError};
use gqa::registry::Method;
use gqa::serve::{EngineBuilder, OpPlan, OperatorPlan};
use gqa::served::{BatchConfig, ModelSpec, Request, ServedBuilder, ServedConfig};
use gqa::tensor::{Tensor, UnaryKind};

fn main() {
    // 1. The serving stack below the socket: an engine serving GELU
    //    through an 8-entry INT8 GQA-LUT (example-sized search budget),
    //    one matmul + LUT-GELU + row-softmax model, a coalescing
    //    front-end with four tenants.
    let base = OpPlan::new(Method::GqaRm).with_seed(7).with_budget(0.05);
    let engine = EngineBuilder::new(OperatorPlan::new().with(NonLinearOp::Gelu, base))
        .build()
        .expect("engine build");

    const DIM: usize = 64;
    const TENANTS: usize = 4;
    let weight: Vec<f32> = (0..DIM * DIM)
        .map(|i| ((i as f32) * 0.37).sin() * 0.5)
        .collect();
    let spec = ModelSpec::new("mlp", &[DIM], move |g, x| {
        let w = g.input(Tensor::from_vec(weight.clone(), &[DIM, DIM]));
        let h = g.matmul(x, w);
        let u = g.unary(h, UnaryKind::Gelu);
        g.softmax_rows(u)
    });
    let served = ServedBuilder::new(engine)
        .with_model(spec)
        .with_config(ServedConfig {
            batch: BatchConfig {
                max_batch: 16,
                max_wait: 0,
                capacity: 1024,
            },
            workers: 2,
            tenants: TENANTS,
            ..ServedConfig::default()
        })
        .build();

    // 2. The network front door: bind an ephemeral loopback port with a
    //    per-tenant admission quota and DRR weights (tenant 0 gets 4×
    //    the release share of tenant 3 under contention).
    let server = NetServer::spawn(
        served,
        "127.0.0.1:0",
        NetConfig {
            fair: FairConfig {
                quota: 64,
                quantum: 1,
            },
            weights: vec![4, 2, 1, 1],
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    println!("serving on {}", server.addr());

    // 3. A blocking client: the Hello handshake pins the protocol
    //    version and advertises the model/tenant space.
    let mut client = NetClient::connect(server.addr(), "net_roundtrip").expect("connect");
    let info = client.server_info();
    println!(
        "handshake: protocol v{}, {} model(s), {} tenant(s)",
        info.version, info.models, info.tenants
    );

    // 4. The transport contract, checked live: the socket response is
    //    bit-identical to the in-process path on the same server —
    //    tensors travel as raw f32 bit patterns, so the wire cannot
    //    perturb a value.
    let input = Tensor::from_vec((0..DIM).map(|j| (j as f32 * 0.21).sin()).collect(), &[DIM]);
    let remote = client.infer(0, 0, input.clone()).expect("socket infer");
    let local = server
        .served()
        .serve(Request {
            tenant: 0,
            model: 0,
            input,
        })
        .expect("in-process serve");
    let bits = |t: &Tensor| t.data.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
    assert_eq!(bits(&remote), bits(&local), "socket must equal in-process");
    println!("round trip: socket output bit-identical to in-process serve");

    // 5. Failures come back typed, not as dead sockets: the connection
    //    survives and the next request is served normally.
    match client.infer(0, 7, Tensor::from_vec(vec![0.0; DIM], &[DIM])) {
        Err(NetError::Remote(RemoteError::UnknownModel(7))) => {
            println!("typed error: unknown model id 7 (connection still live)");
        }
        other => panic!("expected typed UnknownModel, got {other:?}"),
    }
    client
        .infer(0, 0, Tensor::from_vec(vec![1.0; DIM], &[DIM]))
        .expect("connection survives a typed error");

    // 6. The observability surface: a Prometheus text export over the
    //    same wire — serving/engine/net counters plus per-tenant
    //    latency and admission-wait histogram series.
    let report = client.stats().expect("stats");
    for line in report.lines().take(8) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", report.lines().count());

    // 7. Drop order does the full shutdown dance: accept loop, the
    //    admission pump (draining queued work with typed ShuttingDown),
    //    the serving front-end, then the connection threads.
    drop(client);
    drop(server);
    println!("clean shutdown");
}
