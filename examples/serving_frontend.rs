//! The serving front-end end to end: tenants submitting concurrently, the
//! coalescer folding their requests into batched forwards, a hot-swap
//! retune landing mid-run, and the per-tenant latency histograms that
//! come out the other side.
//!
//! Run with: `cargo run --release --example serving_frontend`

use gqa::funcs::NonLinearOp;
use gqa::registry::Method;
use gqa::serve::{EngineBuilder, OpPlan, OperatorPlan};
use gqa::served::{
    generate_trace, request_input, BatchConfig, LoadGenConfig, ModelSpec, Request, ServedBuilder,
    ServedConfig,
};
use gqa::tensor::{Tensor, UnaryKind};

fn main() {
    // 1. An engine serving GELU through an 8-entry INT8 GQA-LUT
    //    (example-sized search budget; production plans use 1.0).
    let base = OpPlan::new(Method::GqaRm).with_seed(7).with_budget(0.05);
    let engine = EngineBuilder::new(OperatorPlan::new().with(NonLinearOp::Gelu, base))
        .build()
        .expect("engine build");

    // 2. A served model: per-request rows of 64 features through a
    //    matmul + LUT-GELU + row-softmax block. The forward must treat
    //    the leading dimension as an opaque batch axis — that is what
    //    makes coalescing invisible to callers.
    const DIM: usize = 64;
    let weight: Vec<f32> = (0..DIM * DIM)
        .map(|i| ((i as f32) * 0.37).sin() * 0.5)
        .collect();
    let spec = ModelSpec::new("mlp", &[DIM], move |g, x| {
        let w = g.input(Tensor::from_vec(weight.clone(), &[DIM, DIM]));
        let h = g.matmul(x, w);
        let u = g.unary(h, UnaryKind::Gelu);
        g.softmax_rows(u)
    });

    // 3. The front-end: coalesce up to 16 same-model rows per forward,
    //    bounded admission queue, two worker threads, four tenants.
    const TENANTS: usize = 4;
    let served = ServedBuilder::new(engine)
        .with_model(spec)
        .with_config(ServedConfig {
            batch: BatchConfig {
                max_batch: 16,
                max_wait: 0,
                capacity: 1024,
            },
            workers: 2,
            tenants: TENANTS,
            ..ServedConfig::default()
        })
        .build();

    // 4. A deterministic Zipfian load: hot tenants dominate, and the
    //    same seed replays the identical trace on every run.
    let cfg = LoadGenConfig {
        seed: 0xD0C5,
        requests: 1024,
        tenants: TENANTS,
        models: 1,
        skew: 1.0,
        mean_gap: 0,
    };
    let trace = generate_trace(&cfg);

    // 5. Four closed-loop submitter threads replay the trace while the
    //    main thread hot-swaps the GELU artifact mid-run. Every response
    //    stays entirely on one artifact's datapath — batching and swaps
    //    are invisible to the answer, visible only in the throughput.
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for tenant in 0..TENANTS {
            let (served, trace) = (&served, &trace);
            scope.spawn(move || {
                for e in trace.iter().filter(|e| e.tenant == tenant) {
                    served
                        .serve(Request {
                            tenant,
                            model: 0,
                            input: request_input(e, &[DIM]),
                        })
                        .expect("serve");
                }
            });
        }
        served
            .engine()
            .swap(NonLinearOp::Gelu, base.with_seed(8))
            .expect("mid-run retune");
    });
    let elapsed = start.elapsed();

    // 6. What the front-end observed: coalescing width, throughput, and
    //    per-tenant latency from the lock-free histograms.
    let stats = served.stats();
    println!("front-end: {stats}");
    println!(
        "sustained: {:.0} requests/sec (mean batch width {:.1})",
        stats.completed as f64 / elapsed.as_secs_f64(),
        stats.mean_batch()
    );
    for tenant in 0..TENANTS {
        let lat = served.tenant_latency(tenant);
        println!("tenant {tenant}: {lat}");
    }
    let all = served.latency();
    println!(
        "fleet: p50 ~{} ns, p99 ~{} ns over {} responses",
        all.p50().unwrap_or(0),
        all.p99().unwrap_or(0),
        all.total()
    );
}
