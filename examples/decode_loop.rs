//! Autoregressive decode end to end: a KV-cached greedy generation loop
//! on a LUT-served engine, the prefix-equivalence contract checked live,
//! a mid-decode hot swap, and the same sequence driven through the
//! serving front-end's `DecodeSession`.
//!
//! Run with: `cargo run --release --example decode_loop`

use std::sync::Arc;

use gqa::funcs::NonLinearOp;
use gqa::models::{argmax, DecoderConfig, TinyDecoder};
use gqa::registry::Method;
use gqa::serve::{EngineBuilder, OpPlan, OperatorPlan};
use gqa::served::{DecodeState, ModelDecode, ModelForward, ModelSpec, ServedBuilder};
use gqa::tensor::{BufferPool, EvalMode, Graph, KvCache, NodeId, ParamStore, Tensor};

const MAX_LEN: usize = 64;

/// Serving wrapper: the forward treats each request row as a fresh
/// single-token sequence; `decode()` advertises the KV-cached step path.
struct DecoderModel {
    model: TinyDecoder,
    ps: Arc<ParamStore>,
}

impl ModelForward for DecoderModel {
    fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let (rows, vocab) = (g.value(x).shape[0], self.model.config().vocab);
        let tokens: Vec<usize> = g.value(x).data.iter().map(|&t| t as usize).collect();
        let mut out = Vec::with_capacity(rows * vocab);
        for tok in tokens {
            let logits = self.model.forward_logits(g, &self.ps, &[tok]);
            out.extend_from_slice(&g.value(logits).data);
        }
        g.input(Tensor::from_vec(out, &[rows, vocab]))
    }

    fn decode(&self) -> Option<&dyn ModelDecode> {
        Some(self)
    }
}

impl ModelDecode for DecoderModel {
    fn new_state(&self) -> DecodeState {
        Box::new(self.model.new_caches(MAX_LEN, &mut BufferPool::new()))
    }

    fn step(&self, g: &mut Graph<'_>, input: &Tensor, state: &mut DecodeState) -> Tensor {
        let caches = state.downcast_mut::<Vec<KvCache>>().expect("KV caches");
        let logits = self
            .model
            .step_logits(g, &self.ps, input.data[0] as usize, caches);
        g.value(logits).clone()
    }
}

fn main() {
    // 1. An engine serving GELU (the decoder FFN activation, hit twice
    //    per step) through an 8-entry INT8 GQA-LUT.
    let base = OpPlan::new(Method::GqaRm).with_seed(7).with_budget(0.05);
    let engine = EngineBuilder::new(OperatorPlan::new().with(NonLinearOp::Gelu, base))
        .build()
        .expect("engine build");
    let session = engine.session();

    // 2. The decoder and a prompt.
    let mut ps = ParamStore::new();
    let model = TinyDecoder::new(&mut ps, DecoderConfig::tiny(), 42);
    let prompt = [3usize, 1, 4, 1, 5];

    // 3. The library-level loop: `greedy_decode` prefills the prompt and
    //    generates, one KV-cached step per token.
    let seq = model.greedy_decode(&session, &ps, &prompt, 10, MAX_LEN);
    println!("greedy decode: {seq:?}");

    // 4. Prefix equivalence, checked live: each step's logits are
    //    bit-identical to the last row of the full causal forward over
    //    the prefix so far — the contract the decode suites pin on exact
    //    and LUT backends, simd on and off.
    let mut pool = BufferPool::new();
    let mut caches = model.new_caches(MAX_LEN, &mut pool);
    for t in 0..seq.len() {
        let mut g = Graph::with_mode(&session, EvalMode::Inference, pool);
        let step = model.step_logits(&mut g, &ps, seq[t], &mut caches);
        let step_bits: Vec<u32> = g.value(step).data.iter().map(|x| x.to_bits()).collect();
        pool = g.recycle();

        let mut gf = Graph::new_inference(&session);
        let full = model.forward_logits(&mut gf, &ps, &seq[..=t]);
        let v = gf.value(full);
        let full_bits: Vec<u32> = v.data[t * v.shape[1]..]
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(step_bits, full_bits, "prefix equivalence broke at step {t}");
    }
    println!(
        "prefix equivalence: {} steps bit-identical to the causal forward",
        seq.len()
    );

    // 5. The same model through the serving front-end: `open_decode`
    //    returns a `DecodeSession` owning the per-sequence KV state; each
    //    `step` coalesces with other tenants' steps into batched
    //    forwards. A hot swap between steps retunes the rest of the
    //    sequence — the cache keeps the pre-swap prefix bits.
    let served = ServedBuilder::new(engine)
        .with_model(ModelSpec::from_model(
            "tiny-decoder",
            &[1],
            DecoderModel {
                model: model.clone(),
                ps: Arc::new(ps),
            },
        ))
        .build();
    let decode = served.open_decode(0, 0).expect("decode-capable model");
    let mut tok = prompt[0];
    for t in 0..10 {
        if t == 5 {
            served
                .engine()
                .swap(NonLinearOp::Gelu, base.with_seed(8))
                .expect("mid-decode retune");
        }
        let logits = decode
            .step(Tensor::from_vec(vec![tok as f32], &[1]))
            .expect("step admitted")
            .wait()
            .expect("step served");
        tok = argmax(&logits.data);
    }
    println!(
        "served decode: 10 steps, {} swap(s) mid-sequence, front-end {}",
        served.engine().stats().swaps,
        served.stats()
    );
}
