//! Operator sweep: compare GQA-LUT (with and without Rounding Mutation)
//! against the NN-LUT baseline on every paper operator, across INT8
//! scaling factors — a compact version of the paper's Figures 2(a)/3.
//!
//! The artifacts are resolved through a serving `Engine`: one engine per
//! operator column, with `Engine::swap` retuning the operator from method
//! to method and `Engine::artifact` exposing the currently served LUT for
//! offline scoring. The engine's owned registry caches across the sweep.
//!
//! Run with: `cargo run --release --example operator_sweep`

use gqa::funcs::NonLinearOp;
use gqa::fxp::IntRange;
use gqa::pwl::eval;
use gqa::registry::Method;
use gqa::serve::{EngineBuilder, OpPlan, OperatorPlan};

fn main() {
    // Moderate budget so the example finishes in seconds; the bench
    // binaries run the full paper budget.
    let budget = 0.3;
    for op in [NonLinearOp::Gelu, NonLinearOp::Hswish, NonLinearOp::Exp] {
        println!("=== {} ===", op.name().to_uppercase());
        println!(
            "{:<16} {}",
            "method",
            (0..7)
                .map(|i| format!("{:>9}", format!("S=2^-{i}")))
                .collect::<String>()
        );
        // One single-operator engine per column; swapping retunes it to
        // each method in place.
        let first = OpPlan::new(Method::ALL[0])
            .with_seed(42)
            .with_budget(budget);
        let engine = EngineBuilder::new(OperatorPlan::new().with(op, first))
            .build()
            .expect("engine build");
        for method in Method::ALL {
            engine
                .swap(op, OpPlan::new(method).with_seed(42).with_budget(budget))
                .expect("retune");
            let lut = engine.artifact(op).expect("planned op");
            let range = IntRange::signed(8);
            let clip = Some(op.default_range());
            let mses: Vec<f64> = eval::paper_scale_sweep()
                .into_iter()
                .map(|s| {
                    let inst = lut.instantiate(s, range);
                    eval::mse_dequantized(
                        &|q| inst.eval_dequantized(q),
                        &|x| op.eval(x),
                        s,
                        range,
                        clip,
                    )
                })
                .collect();
            println!(
                "{:<16} {}",
                method.label(),
                mses.iter()
                    .map(|m| format!("{m:>9.1e}"))
                    .collect::<String>()
            );
        }
        println!("engine: {}\n", engine.stats());
    }
    println!("Expected shape: GQA-LUT w/ RM stays low at large scales (left columns)");
    println!("where NN-LUT and the w/o RM variant suffer breakpoint deviation.");
}
