//! Operator sweep: compare GQA-LUT (with and without Rounding Mutation)
//! against the NN-LUT baseline on every paper operator, across INT8
//! scaling factors — a compact version of the paper's Figures 2(a)/3.
//!
//! Run with: `cargo run --release --example operator_sweep`

use gqa::funcs::NonLinearOp;
use gqa::fxp::IntRange;
use gqa::models::luts::build_lut_budgeted;
use gqa::models::Method;
use gqa::pwl::eval;

fn main() {
    // Moderate budget so the example finishes in seconds; the bench
    // binaries run the full paper budget.
    let budget = 0.3;
    for op in [NonLinearOp::Gelu, NonLinearOp::Hswish, NonLinearOp::Exp] {
        println!("=== {} ===", op.name().to_uppercase());
        println!(
            "{:<16} {}",
            "method",
            (0..7)
                .map(|i| format!("{:>9}", format!("S=2^-{i}")))
                .collect::<String>()
        );
        for method in Method::ALL {
            let lut = build_lut_budgeted(method, op, 8, 42, budget);
            let range = IntRange::signed(8);
            let clip = Some(op.default_range());
            let mses: Vec<f64> = eval::paper_scale_sweep()
                .into_iter()
                .map(|s| {
                    let inst = lut.instantiate(s, range);
                    eval::mse_dequantized(
                        &|q| inst.eval_dequantized(q),
                        &|x| op.eval(x),
                        s,
                        range,
                        clip,
                    )
                })
                .collect();
            println!(
                "{:<16} {}",
                method.label(),
                mses.iter()
                    .map(|m| format!("{m:>9.1e}"))
                    .collect::<String>()
            );
        }
        println!();
    }
    println!("Expected shape: GQA-LUT w/ RM stays low at large scales (left columns)");
    println!("where NN-LUT and the w/o RM variant suffer breakpoint deviation.");
}
