//! Approximating a *custom* non-linear function — the generality story of
//! LUT-based pwl (§2.2): any scalar non-linearity can be compiled onto the
//! same hardware engine.
//!
//! Here we approximate the Mish activation `x·tanh(softplus(x))`, which is
//! not in the paper's operator set, with an 8-entry INT8 LUT.
//!
//! Run with: `cargo run --release --example custom_function`

use std::sync::Arc;

use gqa::funcs::{softplus, tanh, NonLinearOp};
use gqa::fxp::{IntRange, PowerOfTwoScale};
use gqa::genetic::{GeneticSearch, SearchConfig};
use gqa::pwl::eval;

fn mish(x: f64) -> f64 {
    x * tanh(softplus(x))
}

fn main() {
    // The op field only provides labeling defaults; range and function are
    // overridden for the custom target.
    let mut config = SearchConfig::for_op(NonLinearOp::Silu).with_seed(11);
    config.range = (-6.0, 6.0);
    let search = GeneticSearch::with_function(config, Arc::new(mish));
    let result = search.run();

    println!("Mish 8-entry LUT, grid MSE {:.3e}", result.best_mse());
    println!("{}", result.pwl());

    // INT8 accuracy across scaling factors, as for the paper operators.
    let range = IntRange::signed(8);
    println!("{:>8}  {:>10}", "S", "INT8 MSE");
    for s in eval::paper_scale_sweep() {
        let inst = result.lut().instantiate(s, range);
        let mse = eval::mse_dequantized(
            &|q| inst.eval_dequantized(q),
            &mish,
            s,
            range,
            Some((-6.0, 6.0)),
        );
        println!("{:>8}  {mse:>10.2e}", s.to_string());
    }

    // Spot-check the datapath at one scale.
    let inst = result.lut().instantiate(PowerOfTwoScale::new(-4), range);
    for &x in &[-3.0, -1.0, 0.0, 0.5, 2.0, 5.0] {
        let y = inst.eval_f64(x);
        println!("mish({x:>5.2}) = {:>8.4}   pwl = {y:>8.4}", mish(x));
    }
}
