//! Approximating a *custom* non-linear function — the generality story of
//! LUT-based pwl (§2.2): any scalar non-linearity can be compiled onto the
//! same hardware engine.
//!
//! Part 1 approximates the Mish activation `x·tanh(softplus(x))`, which is
//! not in the paper's operator set, with a hand-driven 8-entry INT8 search.
//! Part 2 shows the serving-engine spelling for operators *with* a
//! tensor-level kind: TANH (an extension beyond the paper's five) planned,
//! resolved, and served through an `Engine` session like any paper op.
//!
//! Run with: `cargo run --release --example custom_function`

use std::sync::Arc;

use gqa::funcs::{softplus, tanh, NonLinearOp};
use gqa::fxp::{IntRange, PowerOfTwoScale};
use gqa::genetic::{GeneticSearch, SearchConfig};
use gqa::pwl::eval;
use gqa::registry::Method;
use gqa::serve::{EngineBuilder, OpPlan, OperatorPlan};
use gqa::tensor::{UnaryBackend, UnaryKind};

fn mish(x: f64) -> f64 {
    x * tanh(softplus(x))
}

fn main() {
    // ---- Part 1: a function outside the operator registry (Mish) -------
    // The op field only provides labeling defaults; range and function are
    // overridden for the custom target.
    let mut config = SearchConfig::for_op(NonLinearOp::Silu).with_seed(11);
    config.range = (-6.0, 6.0);
    let search = GeneticSearch::with_function(config, Arc::new(mish));
    let result = search.run();

    println!("Mish 8-entry LUT, grid MSE {:.3e}", result.best_mse());
    println!("{}", result.pwl());

    // INT8 accuracy across scaling factors, as for the paper operators.
    let range = IntRange::signed(8);
    println!("{:>8}  {:>10}", "S", "INT8 MSE");
    for s in eval::paper_scale_sweep() {
        let inst = result.lut().instantiate(s, range);
        let mse = eval::mse_dequantized(
            &|q| inst.eval_dequantized(q),
            &mish,
            s,
            range,
            Some((-6.0, 6.0)),
        );
        println!("{:>8}  {mse:>10.2e}", s.to_string());
    }

    // Spot-check the datapath at one scale.
    let inst = result.lut().instantiate(PowerOfTwoScale::new(-4), range);
    for &x in &[-3.0, -1.0, 0.0, 0.5, 2.0, 5.0] {
        let y = inst.eval_f64(x);
        println!("mish({x:>5.2}) = {:>8.4}   pwl = {y:>8.4}", mish(x));
    }

    // ---- Part 2: extension operators through the serving engine --------
    // Any registry operator with a tensor-level kind — TANH here — plans
    // and serves exactly like the paper's five.
    let plan = OperatorPlan::new().with(
        NonLinearOp::Tanh,
        OpPlan::new(Method::GqaRm)
            .with_seed(11)
            .with_budget(0.1)
            .with_scale(PowerOfTwoScale::new(-5)),
    );
    let engine = EngineBuilder::new(plan).build().expect("engine build");
    let session = engine.session();
    println!("\nTANH served through an engine session (vs exact):");
    for &x in &[-2.0f64, -0.5, 0.0, 0.5, 2.0] {
        println!(
            "tanh({x:>5.2}) = {:>8.4}   session = {:>8.4}",
            x.tanh(),
            session.eval(UnaryKind::Tanh, x)
        );
    }
    println!("engine: {}", engine.stats());
}
