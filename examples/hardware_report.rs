//! Hardware cost exploration: area/power of the pwl LUT unit across
//! precisions, entry counts and clock frequencies, plus generated Verilog.
//!
//! Run with: `cargo run --release --example hardware_report`

use gqa::hardware::{verilog, Precision, PwlUnit, TechnologyModel};

fn main() {
    let tech = TechnologyModel::tsmc28_500mhz();

    println!("pwl unit costs (TSMC-28nm-calibrated structural model, 500 MHz):\n");
    println!(
        "{:<10} {:>8} {:>12} {:>11} {:>11}",
        "precision", "entries", "area (um2)", "power (mW)", "gates (GE)"
    );
    for p in Precision::ALL {
        for entries in [4usize, 8, 16, 32] {
            let u = PwlUnit::new(p, entries);
            println!(
                "{:<10} {:>8} {:>12.0} {:>11.2} {:>11.0}",
                p.label(),
                entries,
                u.area_um2(&tech),
                u.power_mw(&tech),
                u.gates()
            );
        }
    }

    println!("\nfrequency scaling of the INT8 8-entry unit:");
    let unit = PwlUnit::new(Precision::Int8, 8);
    for f in [100.0, 250.0, 500.0, 800.0, 1000.0] {
        let t = TechnologyModel::tsmc28_500mhz().at_frequency(f);
        println!("  {f:>6.0} MHz: {:.3} mW", unit.power_mw(&t));
    }

    println!("\ngenerated Verilog for the INT8 8-entry quant-aware unit:\n");
    println!("{}", verilog::emit_pwl_unit(Precision::Int8, 8));
}
