//! Hardware cost exploration: area/power of the pwl LUT unit across
//! precisions, entry counts and clock frequencies, generated Verilog, and
//! the silicon bill-of-materials implied by a serving-engine
//! `OperatorPlan` (one pwl unit per planned operator).
//!
//! Run with: `cargo run --release --example hardware_report`

use gqa::funcs::NonLinearOp;
use gqa::hardware::{verilog, Precision, PwlUnit, TechnologyModel};
use gqa::registry::Method;
use gqa::serve::{EngineBuilder, OpPlan, OperatorPlan};

fn main() {
    let tech = TechnologyModel::tsmc28_500mhz();

    println!("pwl unit costs (TSMC-28nm-calibrated structural model, 500 MHz):\n");
    println!(
        "{:<10} {:>8} {:>12} {:>11} {:>11}",
        "precision", "entries", "area (um2)", "power (mW)", "gates (GE)"
    );
    for p in Precision::ALL {
        for entries in [4usize, 8, 16, 32] {
            let u = PwlUnit::new(p, entries);
            println!(
                "{:<10} {:>8} {:>12.0} {:>11.2} {:>11.0}",
                p.label(),
                entries,
                u.area_um2(&tech),
                u.power_mw(&tech),
                u.gates()
            );
        }
    }

    println!("\nfrequency scaling of the INT8 8-entry unit:");
    let unit = PwlUnit::new(Precision::Int8, 8);
    for f in [100.0, 250.0, 500.0, 800.0, 1000.0] {
        let t = TechnologyModel::tsmc28_500mhz().at_frequency(f);
        println!("  {f:>6.0} MHz: {:.3} mW", unit.power_mw(&t));
    }

    println!("\ngenerated Verilog for the INT8 8-entry quant-aware unit:\n");
    println!("{}", verilog::emit_pwl_unit(Precision::Int8, 8));

    // The serving-engine tie-in: a deployed OperatorPlan implies one pwl
    // unit per planned operator; cost the plan the engine actually
    // resolved (entries straight from `Engine::plan`).
    let base = OpPlan::new(Method::GqaRm).with_seed(7).with_budget(0.02);
    let engine = EngineBuilder::new(
        OperatorPlan::segformer(base).with(NonLinearOp::Hswish, base.with_entries(16)),
    )
    .build()
    .expect("engine build");
    println!("\nsilicon bill-of-materials for the engine's operator plan:");
    println!(
        "{:<10} {:>8} {:>12} {:>11}",
        "operator", "entries", "area (um2)", "power (mW)"
    );
    let (mut area, mut power) = (0.0, 0.0);
    for (op, p) in engine.plan().iter() {
        let unit = PwlUnit::new(Precision::Int8, p.entries);
        area += unit.area_um2(&tech);
        power += unit.power_mw(&tech);
        println!(
            "{:<10} {:>8} {:>12.0} {:>11.2}",
            op.name(),
            p.entries,
            unit.area_um2(&tech),
            unit.power_mw(&tech)
        );
    }
    println!("{:<10} {:>8} {area:>12.0} {power:>11.2}", "TOTAL", "");
}
