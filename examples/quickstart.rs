//! Quickstart: the serving engine end to end — build a multi-operator
//! plan, serve a model forward pass through a `Session`, hot-swap one
//! operator mid-run, persist per-operator snapshot shards, and pick up a
//! republished artifact with `Engine::refresh` (no restart).
//!
//! Run with: `cargo run --release --example quickstart`

use gqa::funcs::NonLinearOp;
use gqa::models::{SegConfig, SegformerLite};
use gqa::registry::Method;
use gqa::serve::{EngineBuilder, OpPlan, OperatorPlan};
use gqa::tensor::{Graph, ParamStore, Tensor, UnaryBackend};

fn forward(backend: &dyn UnaryBackend, model: &SegformerLite, ps: &ParamStore) -> Vec<f32> {
    let mut g = Graph::new(backend);
    let x = g.input(Tensor::full(&[1, 3, 16, 32], 0.4));
    let y = model.forward(&mut g, ps, x);
    g.value(y).data.clone()
}

fn main() {
    // 1. A typed multi-operator plan: SegformerLite's full non-linear
    //    inventory (EXP, GELU, DIV, RSQRT) on GQA-LUT w/ RM 8-entry INT8
    //    LUTs. Example-sized budget; production plans use 1.0.
    let base = OpPlan::new(Method::GqaRm).with_seed(7).with_budget(0.05);
    let plan = OperatorPlan::segformer(base);
    println!("operator plan:\n{plan}\n");

    // 2. Build the engine. It owns its artifact registry (no process
    //    globals) and persists per-operator snapshot shards under `dir`.
    let dir = std::env::temp_dir().join(format!("gqa-quickstart-shards-{}", std::process::id()));
    let engine = EngineBuilder::new(plan)
        .with_snapshot_dir(&dir)
        .build()
        .expect("engine build");

    // 3. Serve a model forward pass through a session. `Session` is a
    //    `UnaryBackend`, so it plugs into the graph like any backend.
    let mut ps = ParamStore::new();
    let model = SegformerLite::new(&mut ps, SegConfig::tiny(), 1);
    let session = engine.session();
    let logits_rm = forward(&session, &model, &ps);
    println!(
        "forward #1 (GQA-LUT w/ RM everywhere): logits[0] = {:.5}",
        logits_rm[0]
    );

    // 4. Hot-swap ONE operator mid-run: retune GELU onto the NN-LUT
    //    baseline. Every live session observes the swap at its next
    //    tensor-level call; in-flight tensors finish on the datapath they
    //    resolved (the hot-swap contract).
    engine
        .swap(
            NonLinearOp::Gelu,
            OpPlan::new(Method::NnLut).with_seed(9).with_budget(0.05),
        )
        .expect("swap gelu");
    let logits_swapped = forward(&session, &model, &ps);
    println!(
        "forward #2 (GELU hot-swapped to NN-LUT): logits[0] = {:.5}  (changed: {})",
        logits_swapped[0],
        logits_rm != logits_swapped
    );

    // 5. Persist the store: one snapshot shard per operator.
    let shards = engine.save_shards().expect("save shards");
    println!("\nwrote {} per-operator shards:", shards.len());
    for p in &shards {
        println!("  {}", p.display());
    }

    // 6. An "offline rebuilder" (second engine on the same store)
    //    republishes the artifacts the serving engine currently uses —
    //    rewriting the shard files.
    let rebuilder = EngineBuilder::new(engine.plan())
        .with_snapshot_dir(&dir)
        .build()
        .expect("rebuilder");
    rebuilder.save_shards().expect("republish shards");

    // 7. The long-lived serving process picks the rebuilt artifacts up
    //    WITHOUT a restart: refresh stats every shard (cheap) and reloads
    //    only the changed ones into every live session.
    let reloaded = engine.refresh().expect("refresh");
    let logits_refreshed = forward(&session, &model, &ps);
    println!(
        "\nrefresh reloaded {reloaded} operators from changed shards; \
         forward #3 bit-identical to #2: {}",
        logits_swapped == logits_refreshed
    );

    println!("\nengine stats: {}", engine.stats());
    std::fs::remove_dir_all(&dir).ok();
}
