//! Quickstart: approximate GELU with GQA-LUT, inspect the LUT, and run the
//! INT8 datapath.
//!
//! Run with: `cargo run --release --example quickstart`

use gqa::funcs::NonLinearOp;
use gqa::fxp::{IntRange, PowerOfTwoScale};
use gqa::genetic::{GeneticSearch, SearchConfig};

fn main() {
    // 1. Configure the search with the paper's Table-1 defaults for GELU
    //    (8-entry LUT, Rounding Mutation, T = 500 generations).
    let config = SearchConfig::for_op(NonLinearOp::Gelu).with_seed(7);
    println!(
        "Searching a {}-entry LUT for {} over [{}, {}] ...",
        config.num_entries(),
        config.op,
        config.range.0,
        config.range.1
    );

    // 2. Run the genetic search.
    let result = GeneticSearch::new(config).run();
    println!("final grid MSE: {:.3e}", result.best_mse());
    println!("\nwinning breakpoints: {:?}", result.breakpoints());
    println!("\nFXP-rounded pwl:\n{}", result.pwl());

    // 3. Materialize the INT8 LUT for one scaling factor and evaluate a few
    //    inputs through the integer datapath of Figure 1(b).
    let scale = PowerOfTwoScale::new(-4); // S = 1/16
    let inst = result.lut().instantiate(scale, IntRange::signed(8));
    println!(
        "quantized breakpoints at S = {scale}: {:?}",
        inst.breakpoints_q()
    );
    println!(
        "\n{:>8} {:>8} {:>12} {:>12} {:>10}",
        "x", "q", "pwl(x)", "gelu(x)", "error"
    );
    for i in -4..=4 {
        let x = i as f64 * 0.75;
        let q = inst.quantize_input(x);
        let approx = inst.eval_dequantized(q);
        let exact = NonLinearOp::Gelu.eval(x);
        println!(
            "{x:>8.3} {q:>8} {approx:>12.5} {exact:>12.5} {:>10.2e}",
            (approx - exact).abs()
        );
    }
}
