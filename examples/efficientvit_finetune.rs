//! The EfficientVitLite counterpart of `segformer_finetune` (a row of
//! Table 5): linear attention's DIV normalizer and every HSWISH go through
//! INT8 pwl LUTs.
//!
//! Run with: `cargo run --release --example efficientvit_finetune`

use gqa::models::{
    EffVitConfig, EfficientVitLite, FinetuneHarness, Method, PwlBackend, ReplaceSet, TrainConfig,
};
use gqa::tensor::ParamStore;

fn main() {
    let mut cfg = TrainConfig::benchmark();
    cfg.pretrain_epochs = 15;
    let harness = FinetuneHarness::new(cfg);

    let mut ps = ParamStore::new();
    let model = EfficientVitLite::new(&mut ps, EffVitConfig::benchmark(), 78);
    println!(
        "EfficientVitLite: {} parameter tensors, {} scalars",
        ps.len(),
        ps.num_scalars()
    );

    println!("pre-training + INT8 quantization...");
    let baseline = harness.pretrain_and_quantize(&model, &mut ps);
    println!(
        "INT8 baseline: mIoU {:.2}%, pixel accuracy {:.2}%",
        100.0 * baseline.miou,
        100.0 * baseline.pixel_accuracy
    );

    let calib = harness.calibrate(&model, &ps);
    let replace = ReplaceSet {
        hswish: true,
        div: true,
        ..ReplaceSet::none()
    };
    for method in Method::ALL {
        let backend = PwlBackend::build(method, replace, &calib, 78, 0.2);
        let mut ps_lut = ps.clone();
        let out = harness.finetune_with_backend(&model, &mut ps_lut, &backend);
        println!(
            "{:<16} HSWISH+DIV on LUTs: mIoU {:.2}% (Δ {:+.2})",
            method.label(),
            100.0 * out.miou,
            100.0 * (out.miou - baseline.miou)
        );
    }
}
