//! The EfficientVitLite counterpart of `segformer_finetune` (a row of
//! Table 5): linear attention's DIV normalizer and every HSWISH go through
//! INT8 pwl LUTs, served by ONE engine whose control plane retunes both
//! operators from method to method (`Engine::swap`) between fine-tunes —
//! the session handed to the harness never changes.
//!
//! Run with: `cargo run --release --example efficientvit_finetune`

use gqa::models::{EffVitConfig, EfficientVitLite, FinetuneHarness, TrainConfig};
use gqa::registry::Method;
use gqa::serve::{EngineBuilder, OpPlan, OperatorPlan};
use gqa::tensor::ParamStore;

fn main() {
    let mut cfg = TrainConfig::benchmark();
    cfg.pretrain_epochs = 15;
    let harness = FinetuneHarness::new(cfg);

    let mut ps = ParamStore::new();
    let model = EfficientVitLite::new(&mut ps, EffVitConfig::benchmark(), 78);
    println!(
        "EfficientVitLite: {} parameter tensors, {} scalars",
        ps.len(),
        ps.num_scalars()
    );

    println!("pre-training + INT8 quantization...");
    let baseline = harness.pretrain_and_quantize(&model, &mut ps);
    println!(
        "INT8 baseline: mIoU {:.2}%, pixel accuracy {:.2}%",
        100.0 * baseline.miou,
        100.0 * baseline.pixel_accuracy
    );

    let calib = harness.calibrate(&model, &ps);
    let plan_for = |method: Method| {
        OperatorPlan::efficientvit(OpPlan::new(method).with_seed(78).with_budget(0.2))
            .calibrated(&calib)
    };

    // Build once with the first method; retune in place for the rest.
    let engine = EngineBuilder::new(plan_for(Method::ALL[0]))
        .build()
        .expect("engine build");
    let session = engine.session();
    for method in Method::ALL {
        for (op, p) in plan_for(method).iter() {
            engine.swap(op, *p).expect("retune operator");
        }
        let mut ps_lut = ps.clone();
        let out = harness.finetune_with_backend(&model, &mut ps_lut, &session);
        println!(
            "{:<16} HSWISH+DIV on LUTs: mIoU {:.2}% (Δ {:+.2})",
            method.label(),
            100.0 * out.miou,
            100.0 * (out.miou - baseline.miou)
        );
    }
    println!("engine: {}", engine.stats());
}
