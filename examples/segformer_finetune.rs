//! End-to-end model experiment (a single row of Table 4): pre-train
//! SegformerLite on SynthScapes, quantize to INT8, replace every
//! non-linear operator with GQA-LUT w/ RM 8-entry LUTs, fine-tune, and
//! compare mIoU against the quantized baseline.
//!
//! Run with: `cargo run --release --example segformer_finetune`
//! (takes a few minutes; it trains a small model from scratch)

use gqa::models::{
    FinetuneHarness, Method, PwlBackend, ReplaceSet, SegConfig, SegformerLite, TrainConfig,
};
use gqa::tensor::ParamStore;

fn main() {
    let mut cfg = TrainConfig::benchmark();
    cfg.pretrain_epochs = 15; // example-sized budget
    let harness = FinetuneHarness::new(cfg);

    let mut ps = ParamStore::new();
    let model = SegformerLite::new(&mut ps, SegConfig::benchmark(), 77);
    println!(
        "SegformerLite: {} parameter tensors, {} scalars",
        ps.len(),
        ps.num_scalars()
    );

    println!("pre-training + INT8 quantization...");
    let baseline = harness.pretrain_and_quantize(&model, &mut ps);
    println!(
        "INT8 baseline: mIoU {:.2}%, pixel accuracy {:.2}%",
        100.0 * baseline.miou,
        100.0 * baseline.pixel_accuracy
    );

    println!("calibrating operator input ranges...");
    let calib = harness.calibrate(&model, &ps);

    println!("building GQA-LUT w/ RM backends and fine-tuning (Altogether row)...");
    let replace = ReplaceSet {
        gelu: true,
        exp: true,
        div: true,
        rsqrt: true,
        hswish: false,
    };
    let backend = PwlBackend::build(Method::GqaRm, replace, &calib, 77, 0.2);
    let mut ps_lut = ps.clone();
    let out = harness.finetune_with_backend(&model, &mut ps_lut, &backend);
    println!(
        "with all non-linear ops on INT8 pwl LUTs: mIoU {:.2}% (Δ {:+.2} vs baseline)",
        100.0 * out.miou,
        100.0 * (out.miou - baseline.miou)
    );
}
