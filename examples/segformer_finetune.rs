//! End-to-end model experiment (a single row of Table 4): pre-train
//! SegformerLite on SynthScapes, quantize to INT8, serve every non-linear
//! operator through GQA-LUT w/ RM 8-entry LUTs via the serving engine,
//! fine-tune, and compare mIoU against the quantized baseline.
//!
//! Run with: `cargo run --release --example segformer_finetune`
//! (takes a few minutes; it trains a small model from scratch)

use gqa::funcs::NonLinearOp;
use gqa::models::{FinetuneHarness, SegConfig, SegformerLite, TrainConfig};
use gqa::registry::Method;
use gqa::serve::{EngineBuilder, OpPlan, OperatorPlan};
use gqa::tensor::ParamStore;

fn main() {
    let mut cfg = TrainConfig::benchmark();
    cfg.pretrain_epochs = 15; // example-sized budget
    let harness = FinetuneHarness::new(cfg);

    let mut ps = ParamStore::new();
    let model = SegformerLite::new(&mut ps, SegConfig::benchmark(), 77);
    println!(
        "SegformerLite: {} parameter tensors, {} scalars",
        ps.len(),
        ps.num_scalars()
    );

    println!("pre-training + INT8 quantization...");
    let baseline = harness.pretrain_and_quantize(&model, &mut ps);
    println!(
        "INT8 baseline: mIoU {:.2}%, pixel accuracy {:.2}%",
        100.0 * baseline.miou,
        100.0 * baseline.pixel_accuracy
    );

    println!("calibrating operator input ranges...");
    let calib = harness.calibrate(&model, &ps);

    println!("building the serving engine (Altogether row) and fine-tuning...");
    let base = OpPlan::new(Method::GqaRm).with_seed(77).with_budget(0.2);
    let plan = OperatorPlan::new()
        .with(NonLinearOp::Exp, base)
        .with(NonLinearOp::Gelu, base)
        .with(NonLinearOp::Div, base)
        .with(NonLinearOp::Rsqrt, base)
        .calibrated(&calib);
    let engine = EngineBuilder::new(plan).build().expect("engine build");
    let session = engine.session();
    let mut ps_lut = ps.clone();
    let out = harness.finetune_with_backend(&model, &mut ps_lut, &session);
    println!(
        "with all non-linear ops on INT8 pwl LUTs: mIoU {:.2}% (Δ {:+.2} vs baseline)",
        100.0 * out.miou,
        100.0 * (out.miou - baseline.miou)
    );
    println!("engine: {}", engine.stats());
}
